package hier

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/canon"
	"repro/internal/mat"
	"repro/internal/timing"
	"repro/internal/variation"
)

// Mode selects how inter-module correlation is handled at design level.
type Mode int

const (
	// FullCorrelation is the paper's proposed method: heterogeneous
	// design-level grids, PCA, and independent-variable replacement.
	FullCorrelation Mode = iota
	// GlobalOnly is the paper's baseline ("only correlation from global
	// variation"): module-local components stay private per instance, so
	// instances correlate only through the shared global variables.
	GlobalOnly
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case FullCorrelation:
		return "proposed (local+global correlation)"
	case GlobalOnly:
		return "global-variation correlation only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Partition is the heterogeneous design-level grid partition (paper Fig. 4).
type Partition struct {
	Centers   [][2]float64 // grid centers: instance grids first, filler last
	InstStart []int        // offset of each instance's grid block in Centers
	Filler    int          // number of filler grids
	Grids     *variation.GridModel
}

// partition builds the design-level grids: each instance contributes its
// module grids at its placed origin, and the uncovered die area is filled
// with default-pitch grids whose centers do not fall inside any instance.
func (d *Design) partition() (*Partition, error) {
	p := &Partition{InstStart: make([]int, len(d.Instances))}
	for i, inst := range d.Instances {
		p.InstStart[i] = len(p.Centers)
		m := inst.Module
		for gy := 0; gy < m.NY; gy++ {
			for gx := 0; gx < m.NX; gx++ {
				p.Centers = append(p.Centers, [2]float64{
					inst.OriginX + (float64(gx)+0.5)*m.Pitch,
					inst.OriginY + (float64(gy)+0.5)*m.Pitch,
				})
			}
		}
	}
	nx := int(d.Width/d.Pitch + 0.5)
	ny := int(d.Height/d.Pitch + 0.5)
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			c := [2]float64{(float64(gx) + 0.5) * d.Pitch, (float64(gy) + 0.5) * d.Pitch}
			if d.covered(c) {
				continue
			}
			p.Centers = append(p.Centers, c)
			p.Filler++
		}
	}
	gm, err := variation.NewGridModelFromCenters(d.Pitch, d.Corr, p.Centers)
	if err != nil {
		return nil, fmt.Errorf("hier: design-level PCA: %w", err)
	}
	p.Grids = gm
	return p, nil
}

func (d *Design) covered(c [2]float64) bool {
	for _, inst := range d.Instances {
		if c[0] >= inst.OriginX && c[0] < inst.OriginX+inst.Module.Width() &&
			c[1] >= inst.OriginY && c[1] < inst.OriginY+inst.Module.Height() {
			return true
		}
	}
	return false
}

// Result of a hierarchical analysis.
type Result struct {
	Mode      Mode
	Space     canon.Space
	Partition *Partition // nil in GlobalOnly mode
	Graph     *timing.Graph
	// Delay is the statistical maximum delay over all primary outputs with
	// all primary inputs arriving at time zero.
	Delay *canon.Form
	// OutputArrivals holds the arrival form per primary output (nil when
	// unreachable).
	OutputArrivals []*canon.Form
	// Sequential holds the design-level setup/hold analysis when the
	// stitched graph carries registers (nil for combinational designs).
	// Hold slacks computed over reduced models are optimistic bounds; see
	// core/sequential.go.
	Sequential *timing.SeqResult
	Elapsed    time.Duration
}

// AnalyzeOptions tunes the analysis engine without changing its result:
// parallel and cached runs are numerically identical to the serial path.
type AnalyzeOptions struct {
	// Workers bounds the goroutines used for replacement matrices,
	// boundary-condition assembly and instance-edge rewriting.
	// <=0 selects GOMAXPROCS; 1 runs strictly serially.
	Workers int
	// DisableCache recomputes the partition/PCA/replacement prep instead of
	// reusing the design's cached prep. Exposed for benchmarking and for
	// callers that mutate state the design fingerprint cannot see.
	DisableCache bool
	// Clock drives the design-level setup/hold analysis on sequential
	// designs; the zero value selects timing.DefaultClock. Ignored for
	// combinational designs.
	Clock timing.ClockSpec
}

// Analyze runs the hierarchical timing analysis of paper Fig. 5 serially
// (with prep caching). Use AnalyzeOpt to run on a worker pool.
func (d *Design) Analyze(mode Mode) (*Result, error) {
	return d.AnalyzeOpt(mode, AnalyzeOptions{Workers: 1})
}

// AnalyzeOpt is Analyze with explicit engine options.
func (d *Design) AnalyzeOpt(mode Mode, opt AnalyzeOptions) (*Result, error) {
	return d.AnalyzeCtx(context.Background(), mode, opt)
}

// AnalyzeCtx is AnalyzeOpt with cooperative cancellation: the stitching
// pool, the prep computation and the design-level forward pass all observe
// ctx, so a long-running analysis driven by a served request stops promptly
// once the request is cancelled or times out.
func (d *Design) AnalyzeCtx(ctx context.Context, mode Mode, opt AnalyzeOptions) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := d.buildTop(ctx, mode, false, opt)
	if err != nil {
		return nil, err
	}
	// The design-level forward pass runs in a flat propagation arena; only
	// the per-output forms surfaced in the result are materialized. Launch
	// sources include the instance clock roots on sequential designs, so
	// register-launched cones reach the primary outputs.
	p := res.Graph.AcquirePass().WithContext(ctx)
	defer p.Release()
	if err := p.Arrivals(res.Graph.LaunchSources()...); err != nil {
		return nil, err
	}
	res.OutputArrivals = make([]*canon.Form, len(res.Graph.Outputs))
	reach := make([]*canon.Form, 0, len(res.Graph.Outputs))
	for k, o := range res.Graph.Outputs {
		res.OutputArrivals[k] = p.Form(o)
		if res.OutputArrivals[k] != nil {
			reach = append(reach, res.OutputArrivals[k])
		}
	}
	if len(reach) == 0 {
		return nil, errors.New("hier: no primary output reachable")
	}
	res.Delay, err = canon.MaxAll(reach)
	if err != nil {
		return nil, err
	}
	if res.Graph.Sequential() {
		res.Sequential, err = res.Graph.SequentialSlacks(opt.Clock)
		if err != nil {
			return nil, fmt.Errorf("hier: sequential slacks: %w", err)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Stitch builds the design's stitched top-level timing graph — through the
// per-design prep cache, with the per-instance rewriting fanned out over
// opt.Workers — without running any propagation. It is the shared-prep
// entry point of the MCMM sweep engine: one stitch, then one propagation
// per scenario over rescaled delay banks. The returned Result carries the
// graph, space and partition; its Delay/OutputArrivals are nil.
func (d *Design) Stitch(ctx context.Context, mode Mode, opt AnalyzeOptions) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d.buildTop(ctx, mode, false, opt)
}

// Flatten builds the ground-truth flat timing graph of the design: every
// instance's ORIGINAL timing graph embedded in the design-level space with
// grid indices mapped into the heterogeneous partition. All modules must
// carry their original graphs. The result supports both analytic
// propagation and structural Monte Carlo.
func (d *Design) Flatten() (*timing.Graph, *Partition, error) {
	return d.FlattenOpt(AnalyzeOptions{Workers: 1})
}

// FlattenOpt is Flatten with explicit engine options.
func (d *Design) FlattenOpt(opt AnalyzeOptions) (*timing.Graph, *Partition, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	for _, inst := range d.Instances {
		if inst.Module.Orig == nil {
			return nil, nil, fmt.Errorf("hier: instance %q module has no original graph; cannot flatten", inst.Name)
		}
	}
	res, err := d.buildTop(context.Background(), FullCorrelation, true, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Partition, nil
}

// preppedEdge is one instance edge rewritten into the design space,
// produced on the worker pool and committed to the top graph serially so
// edge order (and therefore every downstream result) is deterministic.
type preppedEdge struct {
	from, to int
	f        *canon.Form
	lsens    []float64
	grid     int
}

// rewriteEdge maps one instance edge into the design space: the mode's
// variable replacement (eq. 19 for FullCorrelation, private block placement
// for GlobalOnly) plus the boundary load/slew scale. It is the composition
// of rewriteEdgeRaw (the expensive replacement, cacheable per instance
// because it is independent of the boundary conditions) and scaleEdge (the
// cheap per-stitch boundary adjustment); scaling after rewriting is
// bit-identical to the fused computation because every component is scaled
// elementwise.
func rewriteEdge(e *timing.Edge, i int, pp *prep, nP int, mgmComps int,
	extraTo, extraFrom map[int]float64, useOrig bool) (preppedEdge, error) {
	pe, err := rewriteEdgeRaw(e, i, pp, nP, mgmComps, useOrig)
	if err != nil {
		return pe, err
	}
	if scale := boundaryScale(e, extraTo, extraFrom); scale != 1 {
		pe = scaleEdge(pe, scale)
	}
	return pe, nil
}

// rewriteEdgeRaw maps one instance edge into the design space without any
// boundary scale. The returned edge may be cached and shared; scaleEdge
// never mutates it.
func rewriteEdgeRaw(e *timing.Edge, i int, pp *prep, nP int, mgmComps int, useOrig bool) (preppedEdge, error) {
	f, err := rewriteForm(e.Delay, i, pp, nP, mgmComps)
	if err != nil {
		return preppedEdge{}, err
	}
	pe := preppedEdge{from: e.From, to: e.To, f: f}
	if useOrig && pp.part != nil {
		pe.lsens = e.LSens
		pe.grid = pp.part.InstStart[i] + e.Grid
	}
	return pe, nil
}

// rewriteForm maps one module-space canonical form (an edge delay or a
// register constraint) into the design space under the mode's variable
// replacement.
func rewriteForm(src *canon.Form, i int, pp *prep, nP int, mgmComps int) (*canon.Form, error) {
	f := pp.space.NewForm()
	f.Nominal = src.Nominal
	copy(f.Glob, src.Glob)
	f.Rand = src.Rand
	switch pp.mode {
	case FullCorrelation:
		// x = A^+ B_n x_t (eq. 19): coefficient vector per
		// parameter block maps through R^T.
		for p := 0; p < nP; p++ {
			s := src.Loc[p*mgmComps : (p+1)*mgmComps]
			dst, err := pp.repl[i].MulVecT(s)
			if err != nil {
				return nil, err
			}
			copy(f.Loc[p*pp.part.Grids.Comps:(p+1)*pp.part.Grids.Comps], dst)
		}
	case GlobalOnly:
		copy(f.Loc[pp.instLocStart[i]:pp.instLocStart[i+1]], src.Loc)
	}
	return f, nil
}

// boundaryScale returns the load/slew adjustment factor for an edge given
// the instance's boundary-extra maps.
func boundaryScale(e *timing.Edge, extraTo, extraFrom map[int]float64) float64 {
	if ex := extraTo[e.To] + extraFrom[e.From]; ex != 0 && e.Delay.Nominal > 0 {
		s := (e.Delay.Nominal + ex) / e.Delay.Nominal
		if s < 0.1 {
			s = 0.1 // sharp external transitions cannot erase the arc
		}
		return s
	}
	return 1
}

// scaleEdge returns a scaled copy of a raw prepped edge, leaving the input
// (a potential cache entry) untouched.
func scaleEdge(pe preppedEdge, scale float64) preppedEdge {
	out := preppedEdge{from: pe.from, to: pe.to, f: pe.f.Scale(scale), grid: pe.grid}
	if pe.lsens != nil {
		out.lsens = make([]float64, len(pe.lsens))
		for k, v := range pe.lsens {
			out.lsens[k] = v * scale
		}
	}
	return out
}

// rewriteChunkSize is the number of edges one pool task rewrites; small
// enough to balance unequal instances, large enough to amortize dispatch.
const rewriteChunkSize = 128

// buildTop stitches the instance graphs (models, or originals when useOrig)
// into one top-level graph in the design space. The geometry prep comes
// from the design's model cache; the per-instance rewriting and the
// boundary-condition assembly fan out over opt.Workers goroutines.
func (d *Design) buildTop(ctx context.Context, mode Mode, useOrig bool, opt AnalyzeOptions) (*Result, error) {
	nP := len(d.Params)
	pp, err := d.getPrep(ctx, mode, opt)
	if err != nil {
		return nil, err
	}
	space, part := pp.space, pp.part

	// Instance name index and per-graph port maps: O(1) lookups during
	// stitching instead of per-net linear scans over ports.
	instIdx := make(map[string]int, len(d.Instances))
	for i, inst := range d.Instances {
		instIdx[inst.Name] = i
	}
	ports := d.portIndexes(useOrig)

	// Count vertices and assign per-instance bases.
	base := make([]int, len(d.Instances))
	total := 0
	for i, inst := range d.Instances {
		base[i] = total
		total += d.instGraph(inst, useOrig).NumVerts
	}
	top := timing.NewGraph(space, total, d.Params)
	if part != nil {
		top.Grids = part.Grids
	}

	// Load- and slew-aware model use (paper future work): output ports
	// driving more than one net see extra load beyond characterization, and
	// input ports driven by slower-than-reference transitions see extra
	// delay on their fanout edges. Both adjustments scale the affected
	// edges so relative sensitivities are preserved.
	extraTo, extraFrom, err := d.boundaryExtras(ctx, useOrig, instIdx, ports, opt.Workers)
	if err != nil {
		return nil, err
	}

	// Instance edges, rewritten into the design space on the worker pool.
	// Work is split into per-instance edge chunks; each task writes only
	// its own slots, and the serial commit below preserves edge order.
	prepared := make([][]preppedEdge, len(d.Instances))
	type chunk struct{ inst, lo, hi int }
	var chunks []chunk
	for i, inst := range d.Instances {
		nE := len(d.instGraph(inst, useOrig).Edges)
		prepared[i] = make([]preppedEdge, nE)
		for lo := 0; lo < nE; lo += rewriteChunkSize {
			hi := lo + rewriteChunkSize
			if hi > nE {
				hi = nE
			}
			chunks = append(chunks, chunk{inst: i, lo: lo, hi: hi})
		}
	}
	err = timing.ParallelForCtx(ctx, len(chunks), opt.Workers, func(_ context.Context, c int) error {
		ch := chunks[c]
		i := ch.inst
		ig := d.instGraph(d.Instances[i], useOrig)
		mgmComps := d.Instances[i].Module.gridModel().Comps
		for k := ch.lo; k < ch.hi; k++ {
			pe, err := rewriteEdge(&ig.Edges[k], i, pp, nP, mgmComps, extraTo[i], extraFrom[i], useOrig)
			if err != nil {
				return err
			}
			prepared[i][k] = pe
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	edgeBase := make([]int, len(d.Instances))
	for i := range d.Instances {
		edgeBase[i] = len(top.Edges)
		for k := range prepared[i] {
			pe := &prepared[i][k]
			if _, err := top.AddEdge(base[i]+pe.from, base[i]+pe.to, pe.f, pe.lsens, pe.grid); err != nil {
				return nil, err
			}
		}
	}

	// Sequential metadata: instance registers and clock roots merge into the
	// top with vertex ids offset by the instance base, names prefixed by the
	// instance, and constraint forms rewritten into the design space exactly
	// like edge delays.
	for i, inst := range d.Instances {
		ig := d.instGraph(inst, useOrig)
		if !ig.Sequential() {
			continue
		}
		mgmComps := inst.Module.gridModel().Comps
		for _, r := range ig.Registers {
			setup, err := rewriteForm(r.Setup, i, pp, nP, mgmComps)
			if err != nil {
				return nil, err
			}
			hold, err := rewriteForm(r.Hold, i, pp, nP, mgmComps)
			if err != nil {
				return nil, err
			}
			q, clkEdge := -1, -1
			if r.Q >= 0 {
				q = base[i] + r.Q
			}
			if r.ClkEdge >= 0 {
				clkEdge = edgeBase[i] + r.ClkEdge
			}
			grid := -1
			var sl, hl []float64
			if useOrig && part != nil && r.Grid >= 0 {
				grid = part.InstStart[i] + r.Grid
				sl, hl = r.SetupLSens, r.HoldLSens
			}
			top.Registers = append(top.Registers, timing.Register{
				Name: inst.Name + "." + r.Name, Q: q, D: base[i] + r.D, ClkEdge: clkEdge, Grid: grid,
				Setup: setup, Hold: hold, SetupLSens: sl, HoldLSens: hl,
			})
		}
		for _, cr := range ig.ClockRoots {
			top.ClockRoots = append(top.ClockRoots, base[i]+cr)
		}
	}

	// Net edges (constant wire delays).
	lookup := func(p PortRef, wantInput bool) (int, error) {
		idx, ok := instIdx[p.Instance]
		if !ok {
			return 0, fmt.Errorf("hier: unknown instance %q", p.Instance)
		}
		ig := d.instGraph(d.Instances[idx], useOrig)
		pm := ports[ig]
		if wantInput {
			if k, ok := pm.in[p.Port]; ok {
				return base[idx] + ig.Inputs[k], nil
			}
		} else if k, ok := pm.out[p.Port]; ok {
			return base[idx] + ig.Outputs[k], nil
		}
		return 0, fmt.Errorf("hier: port %v not found", p)
	}
	for _, n := range d.Nets {
		from, err := lookup(n.From, false)
		if err != nil {
			return nil, err
		}
		to, err := lookup(n.To, true)
		if err != nil {
			return nil, err
		}
		if _, err := top.AddEdge(from, to, space.Const(n.Delay), nil, 0); err != nil {
			return nil, err
		}
	}

	// Top-level IO.
	ins := make([]int, len(d.PrimaryInputs))
	inNames := make([]string, len(d.PrimaryInputs))
	for k, p := range d.PrimaryInputs {
		v, err := lookup(p, true)
		if err != nil {
			return nil, err
		}
		ins[k] = v
		inNames[k] = p.Instance + "." + p.Port
	}
	outs := make([]int, len(d.PrimaryOutputs))
	outNames := make([]string, len(d.PrimaryOutputs))
	for k, p := range d.PrimaryOutputs {
		v, err := lookup(p, false)
		if err != nil {
			return nil, err
		}
		outs[k] = v
		outNames[k] = p.Instance + "." + p.Port
	}
	if err := top.SetIO(ins, outs, inNames, outNames); err != nil {
		return nil, err
	}
	if _, err := top.Order(); err != nil {
		return nil, fmt.Errorf("hier: stitched design: %w", err)
	}
	return &Result{Mode: mode, Space: space, Partition: part, Graph: top}, nil
}

func (d *Design) instGraph(inst *Instance, useOrig bool) *timing.Graph {
	if useOrig {
		return inst.Module.Orig
	}
	return inst.Module.Model.Graph
}

// boundaryExtras returns, per instance, the extra nominal delay (ps) to
// bill at module boundaries:
//
//   - extraTo, keyed by local output-port vertex: the load adjustment when
//     the port drives more than one net;
//   - extraFrom, keyed by local input-port vertex: the slew adjustment when
//     the driving port presents a transition different from the receiver's
//     characterization reference.
//
// Instances without recorded boundary characterization are left unadjusted.
//
// The per-net conditions are evaluated on the worker pool; contributions
// are then merged serially in net order, so the floating-point accumulation
// order — and hence the result — is identical to a serial run.
func (d *Design) boundaryExtras(ctx context.Context, useOrig bool, instIdx map[string]int, ports map[*timing.Graph]portIndex, workers int) (extraTo, extraFrom []map[int]float64, err error) {
	extraTo = make([]map[int]float64, len(d.Instances))
	extraFrom = make([]map[int]float64, len(d.Instances))
	for i := range extraTo {
		extraTo[i] = map[int]float64{}
		extraFrom[i] = map[int]float64{}
	}
	fanout := make(map[PortRef]int)
	for _, n := range d.Nets {
		fanout[n.From]++
	}
	graphOf := func(name string) (*timing.Graph, int, error) {
		idx, ok := instIdx[name]
		if !ok {
			return nil, 0, fmt.Errorf("hier: unknown instance %q", name)
		}
		return d.instGraph(d.Instances[idx], useOrig), idx, nil
	}
	// Load adjustment at driving output ports. Each driving port gets an
	// independent assignment, so map iteration order does not matter.
	for pr, cnt := range fanout {
		if cnt <= 1 {
			continue
		}
		ig, idx, err := graphOf(pr.Instance)
		if err != nil {
			return nil, nil, err
		}
		if ig.OutputLoadSlopes == nil {
			continue
		}
		if k, ok := ports[ig].out[pr.Port]; ok {
			extraTo[idx][ig.Outputs[k]] = ig.OutputLoadSlopes[k] * float64(cnt-1)
		}
	}
	// Slew adjustment at receiving input ports: evaluate per net in
	// parallel, accumulate in net order.
	type slewContrib struct {
		inst, vert int
		delta      float64
		ok         bool
	}
	contrib := make([]slewContrib, len(d.Nets))
	err = timing.ParallelForCtx(ctx, len(d.Nets), workers, func(_ context.Context, ni int) error {
		n := d.Nets[ni]
		fg, _, err := graphOf(n.From.Instance)
		if err != nil {
			return err
		}
		if fg.OutputPortSlews == nil {
			return nil
		}
		k, ok := ports[fg].out[n.From.Port]
		if !ok {
			return nil
		}
		drvSlew := fg.OutputPortSlews[k]
		if fg.OutputSlewSlopes != nil {
			drvSlew += fg.OutputSlewSlopes[k] * float64(fanout[n.From]-1)
		}
		tg, ti, err := graphOf(n.To.Instance)
		if err != nil {
			return err
		}
		if tg.InputSlewSlopes == nil || tg.RefSlew <= 0 {
			return nil
		}
		if kt, ok := ports[tg].in[n.To.Port]; ok {
			contrib[ni] = slewContrib{
				inst: ti, vert: tg.Inputs[kt],
				delta: tg.InputSlewSlopes[kt] * (drvSlew - tg.RefSlew),
				ok:    true,
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, c := range contrib {
		if c.ok {
			extraFrom[c.inst][c.vert] += c.delta
		}
	}
	return extraTo, extraFrom, nil
}

// portIndex maps port names to port positions for one instance graph —
// built once per stitch so the per-net and per-boundary-edge lookups are
// O(1) instead of linear scans over the port name lists.
type portIndex struct {
	in, out map[string]int
}

// portIndexes builds the per-graph port maps for every distinct instance
// graph of the design; instances sharing one module graph share one entry.
func (d *Design) portIndexes(useOrig bool) map[*timing.Graph]portIndex {
	idx := make(map[*timing.Graph]portIndex, len(d.Instances))
	for _, inst := range d.Instances {
		ig := d.instGraph(inst, useOrig)
		if _, ok := idx[ig]; ok {
			continue
		}
		pi := portIndex{
			in:  make(map[string]int, len(ig.InputNames)),
			out: make(map[string]int, len(ig.OutputNames)),
		}
		for k, n := range ig.InputNames {
			pi.in[n] = k
		}
		for k, n := range ig.OutputNames {
			pi.out[n] = k
		}
		idx[ig] = pi
	}
	return idx
}

func (m *Module) gridModel() *variation.GridModel {
	return m.Model.Graph.Grids
}

// replacementMatrix computes R = A^+ B_n for instance i: A^+ is the
// module-level PCA pseudo-inverse, B_n the rows of the design-level factor
// matrix belonging to the instance's grids (paper eqs. 16-19). R maps the
// design-level independent set x_t to the module's x; a module coefficient
// vector a becomes R^T a at design level.
func replacementMatrix(mgm *variation.GridModel, part *Partition, instIdx int) (*mat.Dense, error) {
	n := mgm.N()
	bsel := mat.NewDense(n, part.Grids.Comps)
	for g := 0; g < n; g++ {
		copy(bsel.Row(g), part.Grids.A.Row(part.InstStart[instIdx]+g))
	}
	return mat.Mul(mgm.Ainv, bsel)
}
