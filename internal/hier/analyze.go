package hier

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/canon"
	"repro/internal/mat"
	"repro/internal/timing"
	"repro/internal/variation"
)

// Mode selects how inter-module correlation is handled at design level.
type Mode int

const (
	// FullCorrelation is the paper's proposed method: heterogeneous
	// design-level grids, PCA, and independent-variable replacement.
	FullCorrelation Mode = iota
	// GlobalOnly is the paper's baseline ("only correlation from global
	// variation"): module-local components stay private per instance, so
	// instances correlate only through the shared global variables.
	GlobalOnly
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case FullCorrelation:
		return "proposed (local+global correlation)"
	case GlobalOnly:
		return "global-variation correlation only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Partition is the heterogeneous design-level grid partition (paper Fig. 4).
type Partition struct {
	Centers   [][2]float64 // grid centers: instance grids first, filler last
	InstStart []int        // offset of each instance's grid block in Centers
	Filler    int          // number of filler grids
	Grids     *variation.GridModel
}

// partition builds the design-level grids: each instance contributes its
// module grids at its placed origin, and the uncovered die area is filled
// with default-pitch grids whose centers do not fall inside any instance.
func (d *Design) partition() (*Partition, error) {
	p := &Partition{InstStart: make([]int, len(d.Instances))}
	for i, inst := range d.Instances {
		p.InstStart[i] = len(p.Centers)
		m := inst.Module
		for gy := 0; gy < m.NY; gy++ {
			for gx := 0; gx < m.NX; gx++ {
				p.Centers = append(p.Centers, [2]float64{
					inst.OriginX + (float64(gx)+0.5)*m.Pitch,
					inst.OriginY + (float64(gy)+0.5)*m.Pitch,
				})
			}
		}
	}
	nx := int(d.Width/d.Pitch + 0.5)
	ny := int(d.Height/d.Pitch + 0.5)
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			c := [2]float64{(float64(gx) + 0.5) * d.Pitch, (float64(gy) + 0.5) * d.Pitch}
			if d.covered(c) {
				continue
			}
			p.Centers = append(p.Centers, c)
			p.Filler++
		}
	}
	gm, err := variation.NewGridModelFromCenters(d.Pitch, d.Corr, p.Centers)
	if err != nil {
		return nil, fmt.Errorf("hier: design-level PCA: %w", err)
	}
	p.Grids = gm
	return p, nil
}

func (d *Design) covered(c [2]float64) bool {
	for _, inst := range d.Instances {
		if c[0] >= inst.OriginX && c[0] < inst.OriginX+inst.Module.Width() &&
			c[1] >= inst.OriginY && c[1] < inst.OriginY+inst.Module.Height() {
			return true
		}
	}
	return false
}

// Result of a hierarchical analysis.
type Result struct {
	Mode      Mode
	Space     canon.Space
	Partition *Partition // nil in GlobalOnly mode
	Graph     *timing.Graph
	// Delay is the statistical maximum delay over all primary outputs with
	// all primary inputs arriving at time zero.
	Delay *canon.Form
	// OutputArrivals holds the arrival form per primary output (nil when
	// unreachable).
	OutputArrivals []*canon.Form
	Elapsed        time.Duration
}

// Analyze runs the hierarchical timing analysis of paper Fig. 5.
func (d *Design) Analyze(mode Mode) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := d.buildTop(mode, false)
	if err != nil {
		return nil, err
	}
	arr, err := res.Graph.ArrivalAll()
	if err != nil {
		return nil, err
	}
	res.OutputArrivals = make([]*canon.Form, len(res.Graph.Outputs))
	var reach []*canon.Form
	for k, o := range res.Graph.Outputs {
		res.OutputArrivals[k] = arr[o]
		if arr[o] != nil {
			reach = append(reach, arr[o])
		}
	}
	if len(reach) == 0 {
		return nil, errors.New("hier: no primary output reachable")
	}
	res.Delay, err = canon.MaxAll(reach)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Flatten builds the ground-truth flat timing graph of the design: every
// instance's ORIGINAL timing graph embedded in the design-level space with
// grid indices mapped into the heterogeneous partition. All modules must
// carry their original graphs. The result supports both analytic
// propagation and structural Monte Carlo.
func (d *Design) Flatten() (*timing.Graph, *Partition, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	for _, inst := range d.Instances {
		if inst.Module.Orig == nil {
			return nil, nil, fmt.Errorf("hier: instance %q module has no original graph; cannot flatten", inst.Name)
		}
	}
	res, err := d.buildTop(FullCorrelation, true)
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Partition, nil
}

// buildTop stitches the instance graphs (models, or originals when useOrig)
// into one top-level graph in the design space.
func (d *Design) buildTop(mode Mode, useOrig bool) (*Result, error) {
	var part *Partition
	var space canon.Space
	nP := len(d.Params)

	// Per-instance replacement matrices (FullCorrelation) or component
	// block offsets (GlobalOnly).
	var repl []*mat.Dense
	var instLocStart []int
	switch mode {
	case FullCorrelation:
		var err error
		part, err = d.partition()
		if err != nil {
			return nil, err
		}
		space = canon.Space{Globals: nP, Components: nP * part.Grids.Comps}
		repl = make([]*mat.Dense, len(d.Instances))
		for i, inst := range d.Instances {
			r, err := replacementMatrix(inst.Module.gridModel(), part, i)
			if err != nil {
				return nil, fmt.Errorf("hier: instance %q: %w", inst.Name, err)
			}
			repl[i] = r
		}
	case GlobalOnly:
		instLocStart = make([]int, len(d.Instances)+1)
		for i, inst := range d.Instances {
			instLocStart[i+1] = instLocStart[i] + nP*inst.Module.gridModel().Comps
		}
		space = canon.Space{Globals: nP, Components: instLocStart[len(d.Instances)]}
	default:
		return nil, fmt.Errorf("hier: unknown mode %d", mode)
	}

	// Count vertices and assign per-instance bases.
	base := make([]int, len(d.Instances))
	total := 0
	for i, inst := range d.Instances {
		base[i] = total
		total += d.instGraph(inst, useOrig).NumVerts
	}
	top := timing.NewGraph(space, total, d.Params)
	if part != nil {
		top.Grids = part.Grids
	}

	// Load- and slew-aware model use (paper future work): output ports
	// driving more than one net see extra load beyond characterization, and
	// input ports driven by slower-than-reference transitions see extra
	// delay on their fanout edges. Both adjustments scale the affected
	// edges so relative sensitivities are preserved.
	extraTo, extraFrom, err := d.boundaryExtras(useOrig)
	if err != nil {
		return nil, err
	}

	// Instance edges, rewritten into the design space.
	for i, inst := range d.Instances {
		ig := d.instGraph(inst, useOrig)
		mgm := inst.Module.gridModel()
		for _, e := range ig.Edges {
			scale := 1.0
			if ex := extraTo[i][e.To] + extraFrom[i][e.From]; ex != 0 && e.Delay.Nominal > 0 {
				scale = (e.Delay.Nominal + ex) / e.Delay.Nominal
				if scale < 0.1 {
					scale = 0.1 // sharp external transitions cannot erase the arc
				}
			}
			f := space.NewForm()
			f.Nominal = e.Delay.Nominal * scale
			for k, v := range e.Delay.Glob {
				f.Glob[k] = v * scale
			}
			f.Rand = e.Delay.Rand * scale
			switch mode {
			case FullCorrelation:
				// x = A^+ B_n x_t (eq. 19): coefficient vector per
				// parameter block maps through R^T.
				for p := 0; p < nP; p++ {
					src := e.Delay.Loc[p*mgm.Comps : (p+1)*mgm.Comps]
					dst, err := repl[i].MulVecT(src)
					if err != nil {
						return nil, err
					}
					out := f.Loc[p*part.Grids.Comps : (p+1)*part.Grids.Comps]
					for k, v := range dst {
						out[k] = v * scale
					}
				}
			case GlobalOnly:
				out := f.Loc[instLocStart[i]:instLocStart[i+1]]
				for k, v := range e.Delay.Loc {
					out[k] = v * scale
				}
			}
			var lsens []float64
			grid := 0
			if useOrig && part != nil {
				lsens = e.LSens
				if scale != 1 && lsens != nil {
					lsens = make([]float64, len(e.LSens))
					for k, v := range e.LSens {
						lsens[k] = v * scale
					}
				}
				grid = part.InstStart[i] + e.Grid
			}
			if _, err := top.AddEdge(base[i]+e.From, base[i]+e.To, f, lsens, grid); err != nil {
				return nil, err
			}
		}
	}

	// Net edges (constant wire delays).
	lookup := func(p PortRef, wantInput bool) (int, error) {
		inst, idx, err := d.instance(p.Instance)
		if err != nil {
			return 0, err
		}
		ig := d.instGraph(inst, useOrig)
		names, verts := ig.OutputNames, ig.Outputs
		if wantInput {
			names, verts = ig.InputNames, ig.Inputs
		}
		for k, n := range names {
			if n == p.Port {
				return base[idx] + verts[k], nil
			}
		}
		return 0, fmt.Errorf("hier: port %v not found", p)
	}
	for _, n := range d.Nets {
		from, err := lookup(n.From, false)
		if err != nil {
			return nil, err
		}
		to, err := lookup(n.To, true)
		if err != nil {
			return nil, err
		}
		if _, err := top.AddEdge(from, to, space.Const(n.Delay), nil, 0); err != nil {
			return nil, err
		}
	}

	// Top-level IO.
	ins := make([]int, len(d.PrimaryInputs))
	inNames := make([]string, len(d.PrimaryInputs))
	for k, p := range d.PrimaryInputs {
		v, err := lookup(p, true)
		if err != nil {
			return nil, err
		}
		ins[k] = v
		inNames[k] = p.Instance + "." + p.Port
	}
	outs := make([]int, len(d.PrimaryOutputs))
	outNames := make([]string, len(d.PrimaryOutputs))
	for k, p := range d.PrimaryOutputs {
		v, err := lookup(p, false)
		if err != nil {
			return nil, err
		}
		outs[k] = v
		outNames[k] = p.Instance + "." + p.Port
	}
	if err := top.SetIO(ins, outs, inNames, outNames); err != nil {
		return nil, err
	}
	if _, err := top.Order(); err != nil {
		return nil, fmt.Errorf("hier: stitched design: %w", err)
	}
	return &Result{Mode: mode, Space: space, Partition: part, Graph: top}, nil
}

func (d *Design) instGraph(inst *Instance, useOrig bool) *timing.Graph {
	if useOrig {
		return inst.Module.Orig
	}
	return inst.Module.Model.Graph
}

// boundaryExtras returns, per instance, the extra nominal delay (ps) to
// bill at module boundaries:
//
//   - extraTo, keyed by local output-port vertex: the load adjustment when
//     the port drives more than one net;
//   - extraFrom, keyed by local input-port vertex: the slew adjustment when
//     the driving port presents a transition different from the receiver's
//     characterization reference.
//
// Instances without recorded boundary characterization are left unadjusted.
func (d *Design) boundaryExtras(useOrig bool) (extraTo, extraFrom []map[int]float64, err error) {
	extraTo = make([]map[int]float64, len(d.Instances))
	extraFrom = make([]map[int]float64, len(d.Instances))
	for i := range extraTo {
		extraTo[i] = map[int]float64{}
		extraFrom[i] = map[int]float64{}
	}
	fanout := make(map[PortRef]int)
	for _, n := range d.Nets {
		fanout[n.From]++
	}
	// Load adjustment at driving output ports.
	for pr, cnt := range fanout {
		if cnt <= 1 {
			continue
		}
		inst, idx, err := d.instance(pr.Instance)
		if err != nil {
			return nil, nil, err
		}
		ig := d.instGraph(inst, useOrig)
		if ig.OutputLoadSlopes == nil {
			continue
		}
		if k := outPortIndex(ig, pr.Port); k >= 0 {
			extraTo[idx][ig.Outputs[k]] = ig.OutputLoadSlopes[k] * float64(cnt-1)
		}
	}
	// Slew adjustment at receiving input ports.
	for _, n := range d.Nets {
		fromInst, _, err := d.instance(n.From.Instance)
		if err != nil {
			return nil, nil, err
		}
		fg := d.instGraph(fromInst, useOrig)
		if fg.OutputPortSlews == nil {
			continue
		}
		k := outPortIndex(fg, n.From.Port)
		if k < 0 {
			continue
		}
		drvSlew := fg.OutputPortSlews[k]
		if fg.OutputSlewSlopes != nil {
			drvSlew += fg.OutputSlewSlopes[k] * float64(fanout[n.From]-1)
		}
		toInst, ti, err := d.instance(n.To.Instance)
		if err != nil {
			return nil, nil, err
		}
		tg := d.instGraph(toInst, useOrig)
		if tg.InputSlewSlopes == nil || tg.RefSlew <= 0 {
			continue
		}
		if kt := inPortIndex(tg, n.To.Port); kt >= 0 {
			extraFrom[ti][tg.Inputs[kt]] += tg.InputSlewSlopes[kt] * (drvSlew - tg.RefSlew)
		}
	}
	return extraTo, extraFrom, nil
}

func outPortIndex(g *timing.Graph, port string) int {
	for k, name := range g.OutputNames {
		if name == port {
			return k
		}
	}
	return -1
}

func inPortIndex(g *timing.Graph, port string) int {
	for k, name := range g.InputNames {
		if name == port {
			return k
		}
	}
	return -1
}

func (m *Module) gridModel() *variation.GridModel {
	return m.Model.Graph.Grids
}

// replacementMatrix computes R = A^+ B_n for instance i: A^+ is the
// module-level PCA pseudo-inverse, B_n the rows of the design-level factor
// matrix belonging to the instance's grids (paper eqs. 16-19). R maps the
// design-level independent set x_t to the module's x; a module coefficient
// vector a becomes R^T a at design level.
func replacementMatrix(mgm *variation.GridModel, part *Partition, instIdx int) (*mat.Dense, error) {
	n := mgm.N()
	bsel := mat.NewDense(n, part.Grids.Comps)
	for g := 0; g < n; g++ {
		copy(bsel.Row(g), part.Grids.A.Row(part.InstStart[instIdx]+g))
	}
	return mat.Mul(mgm.Ainv, bsel)
}
