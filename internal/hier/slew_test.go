package hier

import (
	"math"
	"testing"
)

func TestSlewCharacterizationPresent(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	g := mod.Model.Graph
	if g.RefSlew <= 0 {
		t.Fatal("model lost the reference slew")
	}
	if len(g.InputSlewSlopes) != len(g.Inputs) {
		t.Fatalf("input slew slopes %d != inputs %d", len(g.InputSlewSlopes), len(g.Inputs))
	}
	if len(g.OutputPortSlews) != len(g.Outputs) || len(g.OutputSlewSlopes) != len(g.Outputs) {
		t.Fatal("output slew characterization incomplete")
	}
	for k, s := range g.OutputPortSlews {
		if s <= 0 {
			t.Fatalf("output %d slew %g", k, s)
		}
	}
}

// TestSlewAdjustmentDirection: a module whose inputs are driven by a port
// with slower-than-reference transition must get slower; sharper, faster.
func TestSlewAdjustmentDirection(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)

	base, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}

	// Make the drivers present a much slower transition.
	slews := mod.Model.Graph.OutputPortSlews
	orig := append([]float64(nil), slews...)
	for k := range slews {
		slews[k] = orig[k] + 40
	}
	slow, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Delay.Mean() <= base.Delay.Mean() {
		t.Fatalf("slower driver transitions should slow the design: %g vs %g",
			slow.Delay.Mean(), base.Delay.Mean())
	}

	// And a very sharp transition speeds it up.
	for k := range slews {
		slews[k] = 1
	}
	sharp, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if sharp.Delay.Mean() >= base.Delay.Mean() {
		t.Fatalf("sharper driver transitions should speed the design: %g vs %g",
			sharp.Delay.Mean(), base.Delay.Mean())
	}
	copy(slews, orig)
}

func TestSlewAdjustmentIsBoundaryScale(t *testing.T) {
	// The adjustment must stay a boundary effect: doubling all driver slews
	// shifts the design delay by much less than the module delay itself.
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	base, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	slews := mod.Model.Graph.OutputPortSlews
	orig := append([]float64(nil), slews...)
	for k := range slews {
		slews[k] *= 2
	}
	bumped, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	copy(slews, orig)
	rel := math.Abs(bumped.Delay.Mean()-base.Delay.Mean()) / base.Delay.Mean()
	if rel > 0.10 {
		t.Fatalf("slew adjustment moved the design delay by %.1f%% — not a boundary effect", 100*rel)
	}
}

func TestSlewDisabledWithoutCharacterization(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	base, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	mod.Model.Graph.OutputPortSlews = nil // vendor shipped no slew data
	off, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	mod.Model.Graph.InputSlewSlopes = nil
	off2, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if off.Delay.Mean() != off2.Delay.Mean() {
		t.Fatal("partial slew data should behave like none")
	}
	// Without slew data the result is close to, but not necessarily equal,
	// the slew-aware one (the multiplier ports here see near-reference
	// transitions).
	rel := math.Abs(off.Delay.Mean()-base.Delay.Mean()) / base.Delay.Mean()
	if rel > 0.05 {
		t.Fatalf("disabling slew data changed delay by %.1f%%", 100*rel)
	}
}
