package hier

import (
	"math"
	"testing"

	"repro/internal/mc"
	"repro/internal/stats"
	"repro/internal/variation"
)

// fanoutDesign builds a three-instance design in which every output port of
// A drives `fan` downstream instances (load-aware model use, the paper's
// stated future work).
func fanoutDesign(t *testing.T, mod *Module, fan int) *Design {
	t.Helper()
	corr, _ := variation.DefaultCorrelation()
	w, h := mod.Width(), mod.Height()
	d := &Design{
		Name: "fanout", Width: 3 * w, Height: 2 * h, Pitch: mod.Pitch,
		Corr: corr, Params: variation.Nassif90nm(),
		Instances: []*Instance{
			{Name: "A", Module: mod, OriginX: 0, OriginY: 0},
			{Name: "B", Module: mod, OriginX: w, OriginY: 0},
			{Name: "C", Module: mod, OriginX: 2 * w, OriginY: 0},
		},
	}
	ins := mod.Model.Graph.InputNames
	outs := mod.Model.Graph.OutputNames
	n := len(outs)
	if len(ins) < n {
		n = len(ins)
	}
	sinks := []string{"B", "C"}
	for k := 0; k < n; k++ {
		for s := 0; s < fan; s++ {
			d.Nets = append(d.Nets, Net{
				From: PortRef{Instance: "A", Port: outs[k]},
				To:   PortRef{Instance: sinks[s], Port: ins[k]},
			})
		}
	}
	for _, in := range ins {
		d.PrimaryInputs = append(d.PrimaryInputs, PortRef{Instance: "A", Port: in})
	}
	// Unconnected inputs of the sink instances are primary inputs.
	if len(ins) > n {
		for _, in := range ins[n:] {
			d.PrimaryInputs = append(d.PrimaryInputs,
				PortRef{Instance: "B", Port: in}, PortRef{Instance: "C", Port: in})
		}
	}
	for _, out := range outs {
		d.PrimaryOutputs = append(d.PrimaryOutputs, PortRef{Instance: "B", Port: out})
		if fan > 1 {
			d.PrimaryOutputs = append(d.PrimaryOutputs, PortRef{Instance: "C", Port: out})
		}
	}
	if fan == 1 {
		// Instance C would dangle; keep the design legal by driving it from
		// primary inputs directly.
		for _, in := range ins {
			d.PrimaryInputs = append(d.PrimaryInputs, PortRef{Instance: "C", Port: in})
		}
		for _, out := range outs {
			d.PrimaryOutputs = append(d.PrimaryOutputs, PortRef{Instance: "C", Port: out})
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadAwareModelsSlowWithFanout(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	if mod.Model.Graph.OutputLoadSlopes == nil {
		t.Fatal("model lost the output load slopes")
	}
	d1 := fanoutDesign(t, mod, 1)
	d2 := fanoutDesign(t, mod, 2)
	r1, err := d1.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Delay.Mean() <= r1.Delay.Mean() {
		t.Fatalf("double-loaded outputs should be slower: %g vs %g", r2.Delay.Mean(), r1.Delay.Mean())
	}
	// The adjustment is a boundary effect, not a rescale of the design.
	if r2.Delay.Mean() > 1.10*r1.Delay.Mean() {
		t.Fatalf("load adjustment too large: %g vs %g", r2.Delay.Mean(), r1.Delay.Mean())
	}
}

func TestLoadAwareFlattenConsistent(t *testing.T) {
	// The same load adjustment must apply to the flattened ground truth so
	// hierarchical and Monte Carlo remain comparable.
	mod := buildModule(t, "m4", 4)
	d2 := fanoutDesign(t, mod, 2)
	res, err := d2.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := d2.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := mc.MaxDelaySamples(flat, mc.Config{Samples: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(samples)
	if rel := math.Abs(res.Delay.Mean()-s.Mean) / s.Mean; rel > 0.02 {
		t.Fatalf("hier mean %g vs MC %g (rel %g)", res.Delay.Mean(), s.Mean, rel)
	}
}

func TestLoadAwareDisabledWithoutSlopes(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d2 := fanoutDesign(t, mod, 2)
	base, err := d2.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the slopes: the adjustment must silently disable.
	mod.Model.Graph.OutputLoadSlopes = nil
	mod.Orig.OutputLoadSlopes = nil
	off, err := d2.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if off.Delay.Mean() >= base.Delay.Mean() {
		t.Fatalf("disabling load slopes should reduce delay: %g vs %g", off.Delay.Mean(), base.Delay.Mean())
	}
}
