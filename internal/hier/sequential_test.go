package hier

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/variation"
)

// buildSeqModule extracts a timing model from a clocked multiplier, keeping
// the original sequential graph for flattening.
func buildSeqModule(t *testing.T, name string, width int) *Module {
	t.Helper()
	comb, err := circuit.ArrayMultiplier(width)
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.Clocked(comb)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.Synthetic90nm()
	plan, err := place.Topological(c, place.DefaultPitch)
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := variation.DefaultCorrelation()
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, corr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := timing.Build(c, lib, plan, gm)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Extract(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModule(name, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	mod.Orig = g
	return mod
}

func TestAnalyzeSequentialDesign(t *testing.T) {
	mod := buildSeqModule(t, "sm4", 4)
	if !mod.Model.Graph.Sequential() {
		t.Fatal("extracted module model lost registers")
	}
	d := twoByTwo(t, mod)
	clock := timing.ClockSpec{PeriodPS: 800, SkewPS: 10, JitterPS: 5}

	res, err := d.AnalyzeOpt(FullCorrelation, AnalyzeOptions{Workers: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sequential == nil {
		t.Fatal("sequential design produced no setup/hold analysis")
	}
	wantRegs := 4 * len(mod.Model.Graph.Registers)
	if got := len(res.Graph.Registers); got != wantRegs {
		t.Fatalf("stitched top has %d registers, want %d", got, wantRegs)
	}
	if got := len(res.Graph.ClockRoots); got != 4*len(mod.Model.Graph.ClockRoots) {
		t.Fatalf("stitched top has %d clock roots, want %d", got, 4*len(mod.Model.Graph.ClockRoots))
	}
	for _, r := range res.Graph.Registers {
		if i := strings.IndexByte(r.Name, '.'); i <= 0 {
			t.Fatalf("register %q not prefixed with its instance", r.Name)
		}
	}
	if res.Sequential.WorstSetup == nil || res.Sequential.WorstHold == nil {
		t.Fatal("missing worst setup/hold forms")
	}
	if math.IsNaN(res.Sequential.WorstSetup.Mean()) || res.Sequential.WorstSetup.Std() < 0 {
		t.Fatalf("bad worst setup: mean %g std %g",
			res.Sequential.WorstSetup.Mean(), res.Sequential.WorstSetup.Std())
	}
	// A generous period must leave positive setup slack on this small design.
	if res.Sequential.WorstSetup.Mean() < 0 {
		t.Fatalf("worst setup slack %g negative under an 800ps clock", res.Sequential.WorstSetup.Mean())
	}
}

func TestSequentialFlattenVsModel(t *testing.T) {
	mod := buildSeqModule(t, "sm4", 4)
	d := twoByTwo(t, mod)
	clock := timing.ClockSpec{PeriodPS: 700}

	res, err := d.AnalyzeOpt(FullCorrelation, AnalyzeOptions{Workers: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := d.FlattenOpt(AnalyzeOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Sequential() {
		t.Fatal("flattened graph lost registers")
	}
	fres, err := flat.SequentialSlacks(clock)
	if err != nil {
		t.Fatal(err)
	}
	// Model-based setup slack must track the flat ground truth within a few
	// percent of the slack scale (extraction delta + boundary adjustments).
	scale := math.Abs(fres.WorstSetup.Mean()) + fres.WorstSetup.Std() + 1
	if d := math.Abs(res.Sequential.WorstSetup.Mean() - fres.WorstSetup.Mean()); d > 0.08*scale+3 {
		t.Fatalf("model setup slack %g vs flat %g (diff %g)",
			res.Sequential.WorstSetup.Mean(), fres.WorstSetup.Mean(), d)
	}
	// Hold on reduced models is optimistic: the model bound must not be
	// below the flat truth by more than noise.
	if res.Sequential.WorstHold.Mean() < fres.WorstHold.Mean()-1e-6 {
		t.Fatalf("model hold slack %g pessimistic vs flat %g",
			res.Sequential.WorstHold.Mean(), fres.WorstHold.Mean())
	}
}

func TestCombinationalDesignHasNoSequential(t *testing.T) {
	mod := buildModule(t, "m4", 4)
	d := twoByTwo(t, mod)
	res, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sequential != nil {
		t.Fatal("combinational design unexpectedly produced sequential results")
	}
}
