//go:build !amd64

package canon

// Non-amd64 builds run the generic kernels; the stubs below exist only to
// satisfy the dispatchers' references and are unreachable.

const useAsm = false

func dotVec(a, b *float64, n int) float64 { panic("canon: no asm kernel") }

func dot3Vec(de, p, s *float64, n int) (dp, ds, ps float64) {
	panic("canon: no asm kernel")
}

func addSqVec(dst, a, b *float64, n int) float64 { panic("canon: no asm kernel") }

func blendSqVec(dst, a, b *float64, n int, tp, tq float64) float64 {
	panic("canon: no asm kernel")
}
