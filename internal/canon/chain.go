package canon

import (
	"math"

	"repro/internal/stats"
)

// This file holds the tracked-variance kernels of the criticality chain
// evaluator. The cutset-complement construction folds long Clark max chains
// (prefix/suffix maxima over a boundary's crossing-edge path delays) and a
// per-home-edge tightness against the merged complement. Recomputing each
// operand's variance inside every step — what MaxViews/TightnessProbViews
// do — performs three dot products per step where one suffices: a Clark
// step knows its output variance in closed form (shared blend energy plus
// the matched private remainder), so the chain can carry variances forward
// and each step only needs the fresh covariance dot. The home-edge
// evaluation goes further: the merged complement max(P, S) is never
// materialized at all — its Clark parameters, and the tightness of the
// home delay against it, are scalar functions of the three pairwise
// covariances (de·P, de·S, P·S), which one fused three-stream pass
// delivers.
//
// Tracked variances are carried as (coeff, rand²) pairs: coeff is the
// shared-coefficient energy Σc² (what covariances are built from), rand²
// the private part. Their sum is the form's variance. The kernels keep the
// Views they write fully materialized (including the private coefficient),
// so a tracked chain slot is still a valid form for any untracked kernel.

// asmMin is the coefficient count below which the generic loops beat the
// vector kernels' call and reduction overhead.
const asmMin = 8

// DotCoeffs returns the shared-coefficient dot product Σ a[i]·b[i] — the
// covariance of the two viewed forms (private parts never co-vary). The
// four-way unrolled accumulators break the add dependency chain; the
// summation order differs from CovViews, which is irrelevant to every
// caller (no cross-kernel bit contract exists) and slightly more accurate.
// On amd64 with AVX2+FMA the body runs in a vector kernel (asm_amd64.s).
func DotCoeffs(a, b View) float64 {
	n := len(a) - 1
	if useAsm && n-1 >= asmMin {
		return dotVec(&a[1], &b[1], n-1)
	}
	var s0, s1, s2, s3 float64
	i := 1
	for ; i+3 < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot3Coeffs returns the three pairwise coefficient dots of one fused pass
// over three streams: de·p, de·s and p·s.
func dot3Coeffs(de, p, s View) (dp, ds, ps float64) {
	n := len(de) - 1
	if useAsm && n-1 >= asmMin {
		return dot3Vec(&de[1], &p[1], &s[1], n-1)
	}
	var dp0, dp1, ds0, ds1, ps0, ps1 float64
	i := 1
	for ; i+1 < n; i += 2 {
		d0, p0, q0 := de[i], p[i], s[i]
		d1, p1, q1 := de[i+1], p[i+1], s[i+1]
		dp0 += d0 * p0
		ds0 += d0 * q0
		ps0 += p0 * q0
		dp1 += d1 * p1
		ds1 += d1 * q1
		ps1 += p1 * q1
	}
	for ; i < n; i++ {
		d, pp, q := de[i], p[i], s[i]
		dp0 += d * pp
		ds0 += d * q
		ps0 += pp * q
	}
	return dp0 + dp1, ds0 + ds1, ps0 + ps1
}

// AddViewsVar is AddViews with the destination's tracked variance computed
// in the same pass: cv is the shared-coefficient energy of dst, r2 its
// private rand². dst may alias a (but not b).
func AddViewsVar(dst, a, b View) (cv, r2 float64) {
	n := len(dst) - 1
	dst[0] = a[0] + b[0]
	if useAsm && n-1 >= asmMin {
		cv = addSqVec(&dst[1], &a[1], &b[1], n-1)
	} else {
		var c0, c1, c2, c3 float64
		i := 1
		for ; i+3 < n; i += 4 {
			x0 := a[i] + b[i]
			x1 := a[i+1] + b[i+1]
			x2 := a[i+2] + b[i+2]
			x3 := a[i+3] + b[i+3]
			dst[i], dst[i+1], dst[i+2], dst[i+3] = x0, x1, x2, x3
			c0 += x0 * x0
			c1 += x1 * x1
			c2 += x2 * x2
			c3 += x3 * x3
		}
		for ; i < n; i++ {
			x := a[i] + b[i]
			dst[i] = x
			c0 += x * x
		}
		cv = (c0 + c1) + (c2 + c3)
	}
	ra, rb := a[n], b[n]
	r2 = ra*ra + rb*rb
	dst[n] = math.Sqrt(r2)
	return cv, r2
}

// MaxViewsVar is the tracked-variance Clark step: it computes
// max(a, b) into dst like MaxViews, but takes both operands' tracked
// variances instead of re-deriving them (turning the three-accumulator
// VarCov pass into a single covariance dot) and returns the destination's
// tracked variance for the next step. dst may alias a (but not b).
func MaxViewsVar(dst, a, b View, cvA, r2A, cvB, r2B float64) (cv, r2 float64) {
	va, vb := cvA+r2A, cvB+r2B
	cov := DotCoeffs(a, b)
	t2 := va + vb - 2*cov
	if t2 < 0 {
		t2 = 0
	}
	theta := math.Sqrt(t2)
	if theta < thetaEps {
		if b[0] > a[0] {
			copy(dst, b)
			return cvB, r2B
		}
		copy(dst, a)
		return cvA, r2A
	}
	z := (a[0] - b[0]) / theta
	tp, phi := stats.NormTP(z)

	mean := tp*a[0] + (1-tp)*b[0] + theta*phi
	second := tp*(va+a[0]*a[0]) + (1-tp)*(vb+b[0]*b[0]) +
		(a[0]+b[0])*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}

	tq := 1 - tp
	n := len(dst) - 1
	if useAsm && n-1 >= asmMin {
		cv = blendSqVec(&dst[1], &a[1], &b[1], n-1, tp, tq)
	} else {
		var s0, s1, s2, s3 float64
		i := 1
		for ; i+3 < n; i += 4 {
			c0 := tp*a[i] + tq*b[i]
			c1 := tp*a[i+1] + tq*b[i+1]
			c2 := tp*a[i+2] + tq*b[i+2]
			c3 := tp*a[i+3] + tq*b[i+3]
			dst[i], dst[i+1], dst[i+2], dst[i+3] = c0, c1, c2, c3
			s0 += c0 * c0
			s1 += c1 * c1
			s2 += c2 * c2
			s3 += c3 * c3
		}
		for ; i < n; i++ {
			c := tp*a[i] + tq*b[i]
			dst[i] = c
			s0 += c * c
		}
		cv = (s0 + s1) + (s2 + s3)
	}
	dst[0] = mean
	r2 = variance - cv
	if r2 < 0 {
		// Same representability fix as MaxViews: the blended shared part
		// already exceeds the Clark variance, drop the private part.
		r2 = 0
	}
	dst[n] = math.Sqrt(r2)
	return cv, r2
}

// TightnessProbVar is TightnessProbViews with both operand variances
// supplied: one covariance dot instead of the fused three-dot VarCov pass.
// It also returns the comparison z-score (+-Inf on the degenerate
// branches), which the criticality engine folds alongside the probability
// so its branch-and-bound tests can run in z-space without a CDF call.
func TightnessProbVar(a, b View, va, vb float64) (c, z float64) {
	cov := DotCoeffs(a, b)
	t2 := va + vb - 2*cov
	if t2 < 0 {
		t2 = 0
	}
	theta := math.Sqrt(t2)
	if theta < thetaEps {
		switch {
		case a[0] > b[0]:
			return 1, math.Inf(1)
		case a[0] < b[0]:
			return 0, math.Inf(-1)
		default:
			return 0.5, 0
		}
	}
	z = (a[0] - b[0]) / theta
	c, _ = stats.NormTP(z)
	return c, z
}

// CompTightnessViews returns P(de >= max(p, s)) — the home-edge
// criticality against its merged prefix/suffix complement — without
// materializing the merged form. One fused pass yields the three pairwise
// covariances; Clark's moment matching then gives the complement's mean
// and representable variance, and the blend linearity gives its covariance
// with de, all as scalars:
//
//	cov(de, max(p,s)) = tp·cov(de,p) + (1-tp)·cov(de,s)
//	cv(max(p,s))      = tp²·cv(p) + 2tp(1-tp)·cov(p,s) + (1-tp)²·cv(s)
//
// The degenerate branches mirror the materialized path exactly: a
// theta-collapsed complement pair reduces to the larger-mean operand, and
// a theta-collapsed final comparison falls back to the nominal ordering.
// vDe is de's variance; (cvP, r2P) and (cvS, r2S) are the operands'
// tracked variances. Like TightnessProbVar it also returns the final
// comparison z-score for the caller's z-space fold.
func CompTightnessViews(de, p, s View, vDe, cvP, r2P, cvS, r2S float64) (c, z float64) {
	covDeP, covDeS, covPS := dot3Coeffs(de, p, s)
	vP, vS := cvP+r2P, cvS+r2S

	t2 := vP + vS - 2*covPS
	if t2 < 0 {
		t2 = 0
	}
	theta := math.Sqrt(t2)

	var meanC, vC, covDeC float64
	if theta < thetaEps {
		// The complement pair collapses to whichever operand has the larger
		// mean (MaxViews' degenerate copy).
		if s[0] > p[0] {
			meanC, vC, covDeC = s[0], vS, covDeS
		} else {
			meanC, vC, covDeC = p[0], vP, covDeP
		}
	} else {
		zc := (p[0] - s[0]) / theta
		tp, phi := stats.NormTP(zc)
		tq := 1 - tp

		meanC = tp*p[0] + tq*s[0] + theta*phi
		second := tp*(vP+p[0]*p[0]) + tq*(vS+s[0]*s[0]) +
			(p[0]+s[0])*theta*phi
		variance := second - meanC*meanC
		if variance < 0 {
			variance = 0
		}
		cvC := tp*tp*cvP + 2*tp*tq*covPS + tq*tq*cvS
		r2C := variance - cvC
		if r2C < 0 {
			r2C = 0 // representability clip, as in the materialized blend
		}
		vC = cvC + r2C
		covDeC = tp*covDeP + tq*covDeS
	}

	t2 = vDe + vC - 2*covDeC
	if t2 < 0 {
		t2 = 0
	}
	thetaT := math.Sqrt(t2)
	if thetaT < thetaEps {
		switch {
		case de[0] > meanC:
			return 1, math.Inf(1)
		case de[0] < meanC:
			return 0, math.Inf(-1)
		default:
			return 0.5, 0
		}
	}
	z = (de[0] - meanC) / thetaT
	c, _ = stats.NormTP(z)
	return c, z
}
