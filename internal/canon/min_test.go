package canon

import (
	"math"
	"math/rand"
	"testing"
)

// randForm fills a form of the space with bounded random coefficients.
func randForm(s Space, rng *rand.Rand) *Form {
	f := s.NewForm()
	f.Nominal = 50 + 100*rng.Float64()
	for i := range f.Glob {
		f.Glob[i] = 4 * (rng.Float64() - 0.5)
	}
	for i := range f.Loc {
		f.Loc[i] = 2 * (rng.Float64() - 0.5)
	}
	f.Rand = 3 * rng.Float64()
	return f
}

// TestMinIsNegatedMaxOfNegations pins MinInto to its defining identity
// min(A, B) = -max(-A, -B) at 1e-12.
func TestMinIsNegatedMaxOfNegations(t *testing.T) {
	s := Space{Globals: 3, Components: 6}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b := randForm(s, rng), randForm(s, rng)
		got := Min(a, b)

		na, nb := a.Scale(-1), b.Scale(-1)
		want := Max(na, nb).Scale(-1)

		if math.Abs(got.Nominal-want.Nominal) > 1e-12 {
			t.Fatalf("trial %d: min nominal %g, -max(-a,-b) %g", trial, got.Nominal, want.Nominal)
		}
		if math.Abs(got.Std()-want.Std()) > 1e-12 {
			t.Fatalf("trial %d: min std %g, -max(-a,-b) std %g", trial, got.Std(), want.Std())
		}
		for i := range got.Glob {
			if math.Abs(got.Glob[i]-want.Glob[i]) > 1e-12 {
				t.Fatalf("trial %d: glob[%d] %g vs %g", trial, i, got.Glob[i], want.Glob[i])
			}
		}
		for i := range got.Loc {
			if math.Abs(got.Loc[i]-want.Loc[i]) > 1e-12 {
				t.Fatalf("trial %d: loc[%d] %g vs %g", trial, i, got.Loc[i], want.Loc[i])
			}
		}
	}
}

// TestMinViewsMatchesMinInto pins the fused flat kernel to the pointer
// kernel bit for bit (identical operation order).
func TestMinViewsMatchesMinInto(t *testing.T) {
	s := Space{Globals: 2, Components: 8}
	rng := rand.New(rand.NewSource(11))
	bank := NewBank(s, 3)
	for trial := 0; trial < 200; trial++ {
		a, b := randForm(s, rng), randForm(s, rng)
		want := Min(a, b)

		va, vb, vd := bank.View(0), bank.View(1), bank.View(2)
		va.LoadForm(a)
		vb.LoadForm(b)
		MinViews(vd, va, vb)
		got := vd.Form(s)

		if got.Nominal != want.Nominal || got.Rand != want.Rand {
			t.Fatalf("trial %d: view min (%g, %g) != form min (%g, %g)",
				trial, got.Nominal, got.Rand, want.Nominal, want.Rand)
		}
		for i := range got.Glob {
			if got.Glob[i] != want.Glob[i] {
				t.Fatalf("trial %d: glob[%d] %g vs %g", trial, i, got.Glob[i], want.Glob[i])
			}
		}
		for i := range got.Loc {
			if got.Loc[i] != want.Loc[i] {
				t.Fatalf("trial %d: loc[%d] %g vs %g", trial, i, got.Loc[i], want.Loc[i])
			}
		}
	}
}

// TestMinDegenerateCopiesSmallerMean covers the theta < thetaEps branch:
// identical shared coefficients, no private part (private Rand is
// independent per operand, so it must be zero for the operands to be the
// same random variable), shifted means.
func TestMinDegenerateCopiesSmallerMean(t *testing.T) {
	s := Space{Globals: 2, Components: 4}
	a := s.NewForm()
	a.Nominal = 10
	a.Glob[0], a.Glob[1] = 1, -2
	b := a.Clone()
	b.Nominal = 7

	got := Min(a, b)
	if got.Nominal != 7 {
		t.Fatalf("degenerate min picked mean %g, want 7", got.Nominal)
	}
	if got.Glob[0] != a.Glob[0] || got.Glob[1] != a.Glob[1] {
		t.Fatalf("degenerate min did not copy operand: %+v", got)
	}

	bank := NewBank(s, 3)
	va, vb, vd := bank.View(0), bank.View(1), bank.View(2)
	va.LoadForm(a)
	vb.LoadForm(b)
	MinViews(vd, va, vb)
	if vd.Nominal() != 7 || vd.Coeffs()[0] != a.Glob[0] {
		t.Fatalf("degenerate MinViews = (%g, %v), want mean 7", vd.Nominal(), vd.Coeffs())
	}
}

// TestMinMonteCarlo sanity-checks the Clark min moments against sampling.
func TestMinMonteCarlo(t *testing.T) {
	s := Space{Globals: 2, Components: 3}
	rng := rand.New(rand.NewSource(3))
	a, b := randForm(s, rng), randForm(s, rng)
	m := Min(a, b)

	const n = 200000
	var sum, sum2 float64
	g := make([]float64, s.Globals)
	x := make([]float64, s.Components)
	for i := 0; i < n; i++ {
		for k := range g {
			g[k] = rng.NormFloat64()
		}
		for k := range x {
			x[k] = rng.NormFloat64()
		}
		va := a.Sample(g, x, rng.NormFloat64())
		vb := b.Sample(g, x, rng.NormFloat64())
		v := math.Min(va, vb)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-m.Mean()) > 0.05*math.Max(1, math.Abs(m.Mean())) {
		t.Fatalf("MC mean %g, Clark min mean %g", mean, m.Mean())
	}
	if math.Abs(std-m.Std()) > 0.1*math.Max(1, m.Std()) {
		t.Fatalf("MC std %g, Clark min std %g", std, m.Std())
	}
}

// TestSubSlackAlgebra pins Sub: coefficients subtract, Rand RSS-combines.
func TestSubSlackAlgebra(t *testing.T) {
	s := Space{Globals: 1, Components: 2}
	a, b := s.NewForm(), s.NewForm()
	a.Nominal, b.Nominal = 10, 4
	a.Glob[0], b.Glob[0] = 2, 0.5
	a.Loc[0], b.Loc[1] = 1, -1
	a.Rand, b.Rand = 3, 4

	d := Sub(a, b)
	if d.Nominal != 6 || d.Glob[0] != 1.5 || d.Loc[0] != 1 || d.Loc[1] != 1 {
		t.Fatalf("Sub coefficients wrong: %+v", d)
	}
	if d.Rand != 5 {
		t.Fatalf("Sub rand %g, want RSS 5", d.Rand)
	}
}
