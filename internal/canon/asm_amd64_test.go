//go:build amd64

package canon

import (
	"math"
	"math/rand"
	"testing"
)

// TestAsmKernelsMatchGeneric pins the vector kernels against straight
// scalar evaluation over every length around the dispatch threshold and
// the c7552-sized body, including the unaligned tails. Lane-parallel
// summation reorders the additions, so the contract is relative closeness,
// not bit identity.
func TestAsmKernelsMatchGeneric(t *testing.T) {
	if !useAsm {
		t.Skip("no AVX2/FMA on this machine")
	}
	rng := rand.New(rand.NewSource(41))
	close := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-12*(1+math.Abs(want))
	}
	for n := 1; n <= 130; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		dst := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}

		var dot, dp, ds, ps, add, blend float64
		tp := rng.Float64()
		tq := 1 - tp
		for i := range a {
			dot += a[i] * b[i]
			dp += a[i] * b[i]
			ds += a[i] * c[i]
			ps += b[i] * c[i]
			x := a[i] + b[i]
			add += x * x
			y := tp*a[i] + tq*b[i]
			blend += y * y
		}

		if got := dotVec(&a[0], &b[0], n); !close(got, dot) {
			t.Fatalf("n=%d: dotVec %g want %g", n, got, dot)
		}
		gdp, gds, gps := dot3Vec(&a[0], &b[0], &c[0], n)
		if !close(gdp, dp) || !close(gds, ds) || !close(gps, ps) {
			t.Fatalf("n=%d: dot3Vec (%g,%g,%g) want (%g,%g,%g)", n, gdp, gds, gps, dp, ds, ps)
		}
		if got := addSqVec(&dst[0], &a[0], &b[0], n); !close(got, add) {
			t.Fatalf("n=%d: addSqVec %g want %g", n, got, add)
		}
		for i := range dst {
			if want := a[i] + b[i]; dst[i] != want {
				t.Fatalf("n=%d: addSqVec dst[%d] = %g want %g", n, i, dst[i], want)
			}
		}
		if got := blendSqVec(&dst[0], &a[0], &b[0], n, tp, tq); !close(got, blend) {
			t.Fatalf("n=%d: blendSqVec %g want %g", n, got, blend)
		}
		for i := range dst {
			want := tp*a[i] + tq*b[i]
			if d := math.Abs(dst[i] - want); d > 1e-15*(1+math.Abs(want)) {
				t.Fatalf("n=%d: blendSqVec dst[%d] = %g want %g", n, i, dst[i], want)
			}
		}
		// In-place form: dst aliasing a, as MaxViewsVar chains do.
		ac := append([]float64(nil), a...)
		if got := addSqVec(&ac[0], &ac[0], &b[0], n); !close(got, add) {
			t.Fatalf("n=%d: aliased addSqVec %g want %g", n, got, add)
		}
		copy(ac, a)
		if got := blendSqVec(&ac[0], &ac[0], &b[0], n, tp, tq); !close(got, blend) {
			t.Fatalf("n=%d: aliased blendSqVec %g want %g", n, got, blend)
		}
	}
}
