package canon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var testSpace = Space{Globals: 2, Components: 3}

func randomForm(rng *rand.Rand, s Space) *Form {
	f := s.NewForm()
	f.Nominal = rng.NormFloat64() * 10
	for i := range f.Glob {
		f.Glob[i] = rng.NormFloat64()
	}
	for i := range f.Loc {
		f.Loc[i] = rng.NormFloat64()
	}
	f.Rand = math.Abs(rng.NormFloat64())
	return f
}

func TestConstForm(t *testing.T) {
	f := testSpace.Const(42)
	if f.Mean() != 42 || f.Variance() != 0 || f.Std() != 0 {
		t.Fatalf("Const form wrong: %+v", f)
	}
	if !f.In(testSpace) {
		t.Fatal("Const form not in its space")
	}
	if f.In(Space{Globals: 1, Components: 3}) {
		t.Fatal("In accepted wrong space")
	}
}

func TestVarianceAndCov(t *testing.T) {
	a := testSpace.NewForm()
	a.Glob = []float64{1, 2}
	a.Loc = []float64{3, 0, 0}
	a.Rand = 4
	// 1 + 4 + 9 + 16 = 30
	if a.Variance() != 30 {
		t.Fatalf("Variance = %g, want 30", a.Variance())
	}
	b := testSpace.NewForm()
	b.Glob = []float64{2, 0}
	b.Loc = []float64{1, 1, 0}
	b.Rand = 5
	// Cov = 1*2 + 3*1 = 5 (rands independent)
	if Cov(a, b) != 5 {
		t.Fatalf("Cov = %g, want 5", Cov(a, b))
	}
	if Cov(a, b) != Cov(b, a) {
		t.Fatal("Cov not symmetric")
	}
}

func TestCorr(t *testing.T) {
	a := testSpace.NewForm()
	a.Glob[0] = 2
	if c := Corr(a, a); math.Abs(c-1) > 1e-15 {
		t.Fatalf("self correlation = %g", c)
	}
	c := testSpace.Const(1)
	if Corr(a, c) != 0 {
		t.Fatal("correlation with deterministic form should be 0")
	}
}

func TestAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomForm(rng, testSpace)
	b := randomForm(rng, testSpace)
	c := Add(a, b)
	if math.Abs(c.Mean()-(a.Mean()+b.Mean())) > 1e-12 {
		t.Fatalf("Add mean wrong")
	}
	// Var(a+b) = Var(a) + Var(b) + 2Cov(a,b); private rands are independent.
	want := a.Variance() + b.Variance() + 2*Cov(a, b)
	if math.Abs(c.Variance()-want) > 1e-9 {
		t.Fatalf("Add variance = %g, want %g", c.Variance(), want)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		ab, ba := Add(a, b), Add(b, a)
		if math.Abs(ab.Mean()-ba.Mean()) > 1e-12 {
			return false
		}
		return math.Abs(ab.Variance()-ba.Variance()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddConstAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomForm(rng, testSpace)
	b := a.AddConst(5)
	if math.Abs(b.Mean()-a.Mean()-5) > 1e-12 || math.Abs(b.Variance()-a.Variance()) > 1e-12 {
		t.Fatal("AddConst wrong")
	}
	c := a.Scale(-2)
	if math.Abs(c.Mean()+2*a.Mean()) > 1e-12 {
		t.Fatal("Scale mean wrong")
	}
	if math.Abs(c.Variance()-4*a.Variance()) > 1e-9 {
		t.Fatal("Scale variance wrong")
	}
	if c.Rand < 0 {
		t.Fatal("Scale produced negative Rand")
	}
}

func TestTightnessProbBasic(t *testing.T) {
	a := testSpace.Const(10)
	a.Rand = 1
	b := testSpace.Const(10)
	b.Rand = 1
	if tp := TightnessProb(a, b); math.Abs(tp-0.5) > 1e-12 {
		t.Fatalf("equal forms TP = %g, want 0.5", tp)
	}
	hi := testSpace.Const(100)
	hi.Rand = 1
	lo := testSpace.Const(0)
	lo.Rand = 1
	if tp := TightnessProb(hi, lo); tp < 0.999999 {
		t.Fatalf("dominant TP = %g", tp)
	}
	if tp := TightnessProb(lo, hi); tp > 1e-6 {
		t.Fatalf("dominated TP = %g", tp)
	}
}

func TestTightnessProbDegenerate(t *testing.T) {
	// Perfectly correlated identical variance: theta = 0.
	a := testSpace.NewForm()
	a.Nominal = 5
	a.Glob[0] = 2
	b := a.Clone()
	b.Nominal = 3
	if tp := TightnessProb(a, b); tp != 1 {
		t.Fatalf("theta=0, larger mean: TP = %g, want 1", tp)
	}
	if tp := TightnessProb(b, a); tp != 0 {
		t.Fatalf("theta=0, smaller mean: TP = %g, want 0", tp)
	}
	if tp := TightnessProb(a, a); tp != 0.5 {
		t.Fatalf("identical: TP = %g, want 0.5", tp)
	}
}

func TestMaxDegenerate(t *testing.T) {
	a := testSpace.NewForm()
	a.Nominal = 5
	a.Glob[0] = 2
	b := a.Clone()
	b.Nominal = 7
	m := Max(a, b)
	if m.Mean() != 7 || m.Glob[0] != 2 {
		t.Fatalf("degenerate max should return larger-mean operand, got %+v", m)
	}
}

func TestMaxOfConstants(t *testing.T) {
	a := testSpace.Const(3)
	b := testSpace.Const(8)
	m := Max(a, b)
	if m.Mean() != 8 || m.Std() != 0 {
		t.Fatalf("max of constants = %v", m)
	}
}

func TestMaxDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomForm(rng, testSpace)
	b := a.AddConst(1000) // b completely dominates
	m := Max(a, b)
	if math.Abs(m.Mean()-b.Mean()) > 1e-6 {
		t.Fatalf("dominated max mean = %g, want %g", m.Mean(), b.Mean())
	}
	if math.Abs(m.Variance()-b.Variance()) > 1e-3*b.Variance() {
		t.Fatalf("dominated max variance = %g, want %g", m.Variance(), b.Variance())
	}
}

func TestMaxMeanLowerBound(t *testing.T) {
	// E[max(A,B)] >= max(E[A], E[B]) always.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		m := Max(a, b)
		return m.Mean() >= math.Max(a.Mean(), b.Mean())-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		m1, m2 := Max(a, b), Max(b, a)
		return math.Abs(m1.Mean()-m2.Mean()) < 1e-9 &&
			math.Abs(m1.Variance()-m2.Variance()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxIdempotent(t *testing.T) {
	// Idempotence holds only when the private random part is zero: a cloned
	// form's Rand term is an independent variable, so Max(a, clone) with
	// Rand > 0 legitimately exceeds a.
	rng := rand.New(rand.NewSource(4))
	a := randomForm(rng, testSpace)
	a.Rand = 0
	m := Max(a, a.Clone())
	if math.Abs(m.Mean()-a.Mean()) > 1e-9 || math.Abs(m.Variance()-a.Variance()) > 1e-9 {
		t.Fatalf("Max(a,a) = %v, want %v", m, a)
	}
	// With independent private parts the max must strictly dominate the mean.
	b := randomForm(rng, testSpace)
	b.Rand = 2
	m2 := Max(b, b.Clone())
	if m2.Mean() <= b.Mean() {
		t.Fatalf("Max over independent private parts should raise the mean: %g vs %g", m2.Mean(), b.Mean())
	}
}

// TestMaxAgainstMonteCarlo validates Clark's approximation against sampling
// for a spread of correlation/mean-offset regimes.
func TestMaxAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 200000
	cases := []struct {
		name   string
		make   func() (*Form, *Form)
		meanTl float64
		stdTl  float64
	}{
		{"independent equal", func() (*Form, *Form) {
			a := testSpace.Const(10)
			a.Rand = 2
			b := testSpace.Const(10)
			b.Rand = 2
			return a, b
		}, 0.02, 0.05},
		{"correlated offset", func() (*Form, *Form) {
			a := testSpace.Const(10)
			a.Glob[0] = 2
			a.Rand = 1
			b := testSpace.Const(11)
			b.Glob[0] = 1.5
			b.Rand = 1
			return a, b
		}, 0.02, 0.05},
		{"anticorrelated", func() (*Form, *Form) {
			a := testSpace.Const(5)
			a.Glob[1] = 2
			b := testSpace.Const(5)
			b.Glob[1] = -2
			return a, b
		}, 0.03, 0.08},
	}
	for _, c := range cases {
		a, b := c.make()
		m := Max(a, b)
		var sum, sumsq float64
		g := make([]float64, testSpace.Globals)
		x := make([]float64, testSpace.Components)
		for i := 0; i < n; i++ {
			for j := range g {
				g[j] = rng.NormFloat64()
			}
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			va := a.Sample(g, x, rng.NormFloat64())
			vb := b.Sample(g, x, rng.NormFloat64())
			v := math.Max(va, vb)
			sum += v
			sumsq += v * v
		}
		mcMean := sum / n
		mcStd := math.Sqrt(sumsq/n - mcMean*mcMean)
		if math.Abs(m.Mean()-mcMean) > c.meanTl*math.Max(1, math.Abs(mcMean)) {
			t.Errorf("%s: Clark mean %g vs MC %g", c.name, m.Mean(), mcMean)
		}
		if math.Abs(m.Std()-mcStd) > c.stdTl*math.Max(0.5, mcStd) {
			t.Errorf("%s: Clark std %g vs MC %g", c.name, m.Std(), mcStd)
		}
	}
}

func TestMaxIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomForm(rng, testSpace)
	b := randomForm(rng, testSpace)
	want := Max(a, b)
	dst := a.Clone()
	MaxInto(dst, dst, b) // alias dst == a
	if math.Abs(dst.Mean()-want.Mean()) > 1e-12 || math.Abs(dst.Variance()-want.Variance()) > 1e-12 {
		t.Fatal("MaxInto with aliasing differs from Max")
	}
}

func TestMaxAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fs := []*Form{randomForm(rng, testSpace), randomForm(rng, testSpace), randomForm(rng, testSpace)}
	m, err := MaxAll(fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if m.Mean() < f.Mean()-1e-9 {
			t.Fatalf("MaxAll mean %g below operand mean %g", m.Mean(), f.Mean())
		}
	}
	if _, err := MaxAll(nil); err == nil {
		t.Fatal("MaxAll(nil) should error")
	}
	one, err := MaxAll(fs[:1])
	if err != nil || math.Abs(one.Mean()-fs[0].Mean()) > 1e-15 {
		t.Fatal("MaxAll of single form should be a copy")
	}
}

func TestSampleMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randomForm(rng, testSpace)
	const n = 200000
	var sum, sumsq float64
	g := make([]float64, testSpace.Globals)
	x := make([]float64, testSpace.Components)
	for i := 0; i < n; i++ {
		for j := range g {
			g[j] = rng.NormFloat64()
		}
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		v := f.Sample(g, x, rng.NormFloat64())
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-f.Mean()) > 0.02*math.Max(1, math.Abs(f.Mean())) {
		t.Fatalf("sample mean %g vs analytic %g", mean, f.Mean())
	}
	if math.Abs(std-f.Std()) > 0.02*math.Max(1, f.Std()) {
		t.Fatalf("sample std %g vs analytic %g", std, f.Std())
	}
}

func TestCDFAndQuantile(t *testing.T) {
	f := testSpace.Const(10)
	f.Rand = 2
	if got := f.CDF(10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF at mean = %g", got)
	}
	if got := f.CDF(12); math.Abs(got-0.8413447460685429) > 1e-9 {
		t.Fatalf("CDF(mean+sigma) = %g", got)
	}
	q := f.Quantile(0.8413447460685429)
	if math.Abs(q-12) > 1e-6 {
		t.Fatalf("Quantile roundtrip = %g, want 12", q)
	}
	// Deterministic form step CDF.
	c := testSpace.Const(5)
	if c.CDF(4.9) != 0 || c.CDF(5) != 1 {
		t.Fatal("deterministic CDF should be a step at the nominal")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomForm(rng, testSpace)
	b := a.Clone()
	b.Glob[0] += 100
	b.Loc[0] += 100
	if a.Glob[0] == b.Glob[0] || a.Loc[0] == b.Loc[0] {
		t.Fatal("Clone aliases the original")
	}
}

func TestString(t *testing.T) {
	f := testSpace.Const(1.5)
	if f.String() == "" {
		t.Fatal("String should not be empty")
	}
}

// Property: variance is never negative and Max variance never exceeds
// Var(a)+Var(b) by more than numerical noise... it can legitimately be less;
// check non-negativity and that max mean >= both means.
func TestMaxPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		m := Max(a, b)
		if m.Variance() < 0 {
			return false
		}
		return m.Mean() >= math.Max(a.Mean(), b.Mean())-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
