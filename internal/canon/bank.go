package canon

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// This file is the flat structure-of-arrays representation of canonical
// forms: a Bank is one contiguous []float64 arena holding many forms at a
// fixed stride, and a View is one form inside it. The fused View kernels
// below (AddViews, MaxViews, VarCovViews, ...) are numerically identical to
// the pointer-based Form kernels — they perform the same floating-point
// operations in the same order — but touch a single cache-friendly slice
// per operand and never allocate. The propagation hot path (timing.Pass,
// the criticality engine, the hierarchical stitcher) runs entirely on
// Views; *Form stays the boundary representation for construction,
// serialization and reporting.

// View is one canonical form in flat storage. Layout, for a space with
// d = Dim() shared variables:
//
//	v[0]        Nominal
//	v[1 : 1+d]  shared coefficients, Glob followed by Loc
//	v[1+d]      Rand (coefficient of the private N(0,1); always >= 0)
//
// A View is only valid against other Views of the same space; the kernels
// panic (via slice bounds) on mismatched lengths.
type View []float64

// Stride returns the number of float64 slots one form of the space
// occupies in flat storage.
func (s Space) Stride() int { return s.Dim() + 2 }

// Nominal returns the mean of the viewed form.
func (v View) Nominal() float64 { return v[0] }

// SetNominal overwrites the nominal value.
func (v View) SetNominal(x float64) { v[0] = x }

// Rand returns the private-random coefficient.
func (v View) Rand() float64 { return v[len(v)-1] }

// Coeffs returns the shared coefficient slice (Glob followed by Loc).
func (v View) Coeffs() []float64 { return v[1 : len(v)-1] }

// SetConst overwrites the view with a deterministic form of value c.
func (v View) SetConst(c float64) {
	for i := range v {
		v[i] = 0
	}
	v[0] = c
}

// Variance returns the variance of the viewed form.
func (v View) Variance() float64 {
	var s float64
	for _, c := range v[1:] {
		s += c * c
	}
	return s
}

// Std returns the standard deviation of the viewed form.
func (v View) Std() float64 { return math.Sqrt(v.Variance()) }

// LoadForm copies a pointer-based form into the view.
func (v View) LoadForm(f *Form) {
	v[0] = f.Nominal
	n := copy(v[1:], f.Glob)
	copy(v[1+n:], f.Loc)
	v[len(v)-1] = f.Rand
}

// Form materializes the view as a heap-allocated pointer form of the space.
func (v View) Form(s Space) *Form {
	f := s.NewForm()
	f.Nominal = v[0]
	n := copy(f.Glob, v[1:])
	copy(f.Loc, v[1+n:])
	f.Rand = v[len(v)-1]
	return f
}

// CopyView copies src into dst.
func CopyView(dst, src View) { copy(dst, src) }

// AddViews computes a+b into dst in one fused pass. dst may alias a (but
// not b). Private random parts combine by root-sum-of-squares.
func AddViews(dst, a, b View) {
	n := len(dst) - 1
	for i := 0; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
	ra, rb := a[n], b[n]
	dst[n] = math.Sqrt(ra*ra + rb*rb)
}

// AddFormView computes a+f into dst, reading the second operand from a
// pointer form — the kernel of a graph's first propagation pass, before
// the flat edge-delay bank has proven worth building. Identical operation
// order to AddViews on f's flat image. dst may alias a.
func AddFormView(dst, a View, f *Form) {
	dst[0] = a[0] + f.Nominal
	o := 1
	for i, v := range f.Glob {
		dst[o+i] = a[o+i] + v
	}
	o += len(f.Glob)
	for i, v := range f.Loc {
		dst[o+i] = a[o+i] + v
	}
	n := len(dst) - 1
	dst[n] = math.Sqrt(a[n]*a[n] + f.Rand*f.Rand)
}

// VarCovViews returns Var(a), Var(b) and Cov(a, b) in a single fused pass
// over the coefficient slices.
func VarCovViews(a, b View) (va, vb, cov float64) {
	n := len(a) - 1
	for i := 1; i < n; i++ {
		x, y := a[i], b[i]
		va += x * x
		vb += y * y
		cov += x * y
	}
	va += a[n] * a[n]
	vb += b[n] * b[n]
	return va, vb, cov
}

// CovViews returns the covariance of two views.
func CovViews(a, b View) float64 {
	var s float64
	n := len(a) - 1
	for i := 1; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// TightnessProbViews returns TP = P(A >= B) per paper eq. 6, matching
// TightnessProb on the equivalent pointer forms.
func TightnessProbViews(a, b View) float64 {
	va, vb, cov := VarCovViews(a, b)
	t2 := va + vb - 2*cov
	if t2 < 0 {
		t2 = 0
	}
	theta := math.Sqrt(t2)
	if theta < thetaEps {
		switch {
		case a[0] > b[0]:
			return 1
		case a[0] < b[0]:
			return 0
		default:
			return 0.5
		}
	}
	return stats.NormCDF((a[0] - b[0]) / theta)
}

// ScalePartsView writes the scenario-scaled image of src into dst: the
// whole form is scaled by all (the in-bank analogue of Form.Scale), with
// the Glob, Loc and Rand blocks additionally scaled by glob, loc and rand —
// the kernel of the MCMM sweep engine's per-scenario delay-bank rescaling
// (a delay derate composed with per-block sigma multipliers). nGlob is the
// space's Globals count, fixing the Glob/Loc split. dst may alias src.
func ScalePartsView(dst, src View, nGlob int, all, glob, loc, rand float64) {
	dst[0] = src[0] * all
	kg := all * glob
	i := 1
	for ; i <= nGlob; i++ {
		dst[i] = src[i] * kg
	}
	kl := all * loc
	n := len(dst) - 1
	for ; i < n; i++ {
		dst[i] = src[i] * kl
	}
	kr := all * rand
	if kr < 0 {
		kr = -kr
	}
	dst[n] = src[n] * kr
}

// MaxViews computes Clark's moment-matched max(a, b) into dst (paper
// eqs. 6-9) in one fused pass: variances, covariance, tightness, blend and
// variance matching without any intermediate allocation. dst may alias a
// (but not b).
func MaxViews(dst, a, b View) {
	va, vb, cov := VarCovViews(a, b)
	t2 := va + vb - 2*cov
	if t2 < 0 {
		t2 = 0
	}
	theta := math.Sqrt(t2)
	if theta < thetaEps {
		// Operands are essentially the same random variable up to a mean
		// shift: max is whichever has the larger mean.
		src := a
		if b[0] > a[0] {
			src = b
		}
		copy(dst, src)
		return
	}
	z := (a[0] - b[0]) / theta
	tp := stats.NormCDF(z)
	phi := stats.NormPDF(z)

	mean := tp*a[0] + (1-tp)*b[0] + theta*phi
	second := tp*(va+a[0]*a[0]) + (1-tp)*(vb+b[0]*b[0]) +
		(a[0]+b[0])*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}

	// Blend shared coefficients (eq. 9) — preserves covariances with other
	// forms to first order (Clark 1961).
	var shared float64
	n := len(dst) - 1
	for i := 1; i < n; i++ {
		c := tp*a[i] + (1-tp)*b[i]
		dst[i] = c
		shared += c * c
	}
	dst[0] = mean
	rest := variance - shared
	if rest < 0 {
		// The blended shared part already exceeds the Clark variance; the
		// closest representable form drops the private part. This
		// over-estimates variance slightly and is the standard fix.
		rest = 0
	}
	dst[n] = math.Sqrt(rest)
}

// MinViews computes the moment-matched min(a, b) into dst — the Clark dual
// of MaxViews via min(A, B) = -max(-A, -B) — in the same single fused pass:
// variances, covariance, tightness, blend and variance matching without any
// intermediate allocation. It is the kernel of the earliest-arrival
// (shortest-path) propagation that hold analysis needs. dst may alias a
// (but not b).
func MinViews(dst, a, b View) {
	va, vb, cov := VarCovViews(a, b)
	t2 := va + vb - 2*cov
	if t2 < 0 {
		t2 = 0
	}
	theta := math.Sqrt(t2)
	if theta < thetaEps {
		// Operands are essentially the same random variable up to a mean
		// shift: min is whichever has the smaller mean.
		src := a
		if b[0] < a[0] {
			src = b
		}
		copy(dst, src)
		return
	}
	// tp = P(A <= B), the probability that A is the minimum.
	z := (b[0] - a[0]) / theta
	tp := stats.NormCDF(z)
	phi := stats.NormPDF(z)

	mean := tp*a[0] + (1-tp)*b[0] - theta*phi
	second := tp*(va+a[0]*a[0]) + (1-tp)*(vb+b[0]*b[0]) -
		(a[0]+b[0])*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}

	// Blend shared coefficients with the min-tightness weights — the mirror
	// of the eq. 9 blend, preserving covariances to first order.
	var shared float64
	n := len(dst) - 1
	for i := 1; i < n; i++ {
		c := tp*a[i] + (1-tp)*b[i]
		dst[i] = c
		shared += c * c
	}
	dst[0] = mean
	rest := variance - shared
	if rest < 0 {
		// Same fix as MaxViews: drop the private part when the blended
		// shared variance already exceeds the Clark variance.
		rest = 0
	}
	dst[n] = math.Sqrt(rest)
}

// Bank is a flat arena of canonical forms: one contiguous backing slice of
// capacity*Stride() float64s, forms addressed by slot index. Banks are the
// allocation-free storage of the propagation hot path — a full forward or
// backward pass writes into one pre-sized bank instead of cloning a form
// per reached vertex.
//
// A Bank is not safe for concurrent use; give each worker its own.
type Bank struct {
	space  Space
	stride int
	data   []float64
	used   int // sequential-Take() high-water mark
}

// NewBank returns a bank with the given number of form slots, all zero.
func NewBank(s Space, capacity int) *Bank {
	return &Bank{space: s, stride: s.Stride(), data: make([]float64, capacity*s.Stride())}
}

// NewBankOver returns a bank of the given capacity backed by buf when buf
// has enough capacity, allocating fresh storage otherwise. The buffer's
// previous contents are left in place — every kernel fully overwrites its
// destination slot, so recycled storage needs no zeroing. This is how the
// propagation pass pool hands slabs from retired graphs to new ones.
func NewBankOver(s Space, capacity int, buf []float64) *Bank {
	need := capacity * s.Stride()
	if cap(buf) < need {
		buf = make([]float64, need)
	}
	return &Bank{space: s, stride: s.Stride(), data: buf[:need]}
}

// Data exposes the backing slab, e.g. for returning it to a recycling
// pool. The bank must not be used afterwards.
func (b *Bank) Data() []float64 { return b.data }

// Space returns the space the bank's forms live in.
func (b *Bank) Space() Space { return b.space }

// Cap returns the number of form slots.
func (b *Bank) Cap() int { return len(b.data) / b.stride }

// View returns the view of slot i. Views remain valid for the lifetime of
// the bank (banks never grow).
func (b *Bank) View(i int) View {
	return b.data[i*b.stride : (i+1)*b.stride]
}

// Reset rewinds the sequential allocator; existing slot contents are
// retained but will be handed out again by Take.
func (b *Bank) Reset() { b.used = 0 }

// Take hands out the next sequential slot. The slot's previous contents
// are undefined — callers must fully overwrite it (every kernel with the
// slot as dst does). Take panics when the bank is exhausted: size banks to
// their workload with NewBank, they never grow.
func (b *Bank) Take() View {
	if (b.used+1)*b.stride > len(b.data) {
		panic(fmt.Sprintf("canon: Bank exhausted (%d slots)", b.Cap()))
	}
	v := b.View(b.used)
	b.used++
	return v
}

// TakeBlock hands out n consecutive slots as one view per slot.
func (b *Bank) TakeBlock(n int) []View {
	out := make([]View, n)
	for i := range out {
		out[i] = b.Take()
	}
	return out
}
