package canon

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// randChainViews fills a bank with random forms over a mid-sized space and
// returns the views plus their tracked (coeff, rand²) variances.
func randChainViews(rng *rand.Rand, bank *Bank, n int) ([]View, []float64, []float64) {
	vs := make([]View, n)
	cv := make([]float64, n)
	r2 := make([]float64, n)
	for i := range vs {
		v := bank.Take()
		v[0] = 50 + 10*rng.NormFloat64()
		var c float64
		for k := 1; k < len(v)-1; k++ {
			v[k] = rng.NormFloat64()
			c += v[k] * v[k]
		}
		r := math.Abs(rng.NormFloat64())
		v[len(v)-1] = r
		vs[i], cv[i], r2[i] = v, c, r*r
	}
	return vs, cv, r2
}

// TestTrackedKernelsMatchMaterialized drives the tracked-variance chain
// kernels against the materialized reference path (AddViews + MaxViews +
// TightnessProbViews) over random operands: identical degenerate branch
// selection and values within accumulation-order rounding.
func TestTrackedKernelsMatchMaterialized(t *testing.T) {
	const tol = 1e-9
	rng := rand.New(rand.NewSource(11))
	space := Space{Globals: 3, Components: 20}
	bank := NewBank(space, 64)
	for trial := 0; trial < 200; trial++ {
		bank.Reset()
		ops, cv, r2 := randChainViews(rng, bank, 4)
		a, b, c, d := ops[0], ops[1], ops[2], ops[3]

		// AddViewsVar vs AddViews + recomputed variance.
		sumT, sumM := bank.Take(), bank.Take()
		scv, sr2 := AddViewsVar(sumT, a, b)
		AddViews(sumM, a, b)
		for k := range sumM {
			if sumT[k] != sumM[k] {
				t.Fatalf("trial %d: AddViewsVar word %d: %g != %g", trial, k, sumT[k], sumM[k])
			}
		}
		if dv := math.Abs((scv + sr2) - sumM.Variance()); dv > tol {
			t.Fatalf("trial %d: tracked add variance off by %g", trial, dv)
		}

		// MaxViewsVar vs MaxViews.
		maxT, maxM := bank.Take(), bank.Take()
		mcv, mr2 := MaxViewsVar(maxT, a, b, cv[0], r2[0], cv[1], r2[1])
		MaxViews(maxM, a, b)
		for k := range maxM {
			if diff := math.Abs(maxT[k] - maxM[k]); diff > tol {
				t.Fatalf("trial %d: MaxViewsVar word %d: %g vs %g", trial, k, maxT[k], maxM[k])
			}
		}
		if dv := math.Abs((mcv + mr2) - maxM.Variance()); dv > tol {
			t.Fatalf("trial %d: tracked max variance off by %g", trial, dv)
		}

		// TightnessProbVar vs TightnessProbViews, and the returned z must
		// reproduce the probability through the engine's CDF.
		tpT, tpZ := TightnessProbVar(c, d, cv[2]+r2[2], cv[3]+r2[3])
		tpM := TightnessProbViews(c, d)
		if math.Abs(tpT-tpM) > tol {
			t.Fatalf("trial %d: TightnessProbVar %g vs %g", trial, tpT, tpM)
		}
		if zc, _ := stats.NormTP(tpZ); zc != tpT {
			t.Fatalf("trial %d: TightnessProbVar pair broken: Phi(%g)=%g vs c=%g", trial, tpZ, zc, tpT)
		}

		// CompTightnessViews vs materialized MaxViews + TightnessProbViews.
		comp := bank.Take()
		MaxViews(comp, b, c)
		want := TightnessProbViews(a, comp)
		got, gotZ := CompTightnessViews(a, b, c, cv[0]+r2[0], cv[1], r2[1], cv[2], r2[2])
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: CompTightnessViews %g vs %g", trial, got, want)
		}
		if zc, _ := stats.NormTP(gotZ); zc != got {
			t.Fatalf("trial %d: CompTightnessViews pair broken: Phi(%g)=%g vs c=%g", trial, gotZ, zc, got)
		}
	}
}

// TestTrackedChainMatchesMaterializedChain folds a long prefix chain both
// ways — tracked steps vs materialized MaxViews with recomputed variances —
// and requires the end-of-chain tightness to agree. This is the exact
// pattern the criticality engine runs per cutset boundary.
func TestTrackedChainMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	space := Space{Globals: 2, Components: 30}
	const m = 40
	bank := NewBank(space, 3*m)
	ops, cv, r2 := randChainViews(rng, bank, m)

	chT := make([]View, m)
	chM := make([]View, m)
	for i := range chT {
		chT[i], chM[i] = bank.Take(), bank.Take()
	}
	CopyView(chT[0], ops[0])
	CopyView(chM[0], ops[0])
	ccv, cr2 := cv[0], r2[0]
	for i := 1; i < m; i++ {
		ccv, cr2 = MaxViewsVar(chT[i], chT[i-1], ops[i], ccv, cr2, cv[i], r2[i])
		MaxViews(chM[i], chM[i-1], ops[i])
	}
	for k := range chM[m-1] {
		if diff := math.Abs(chT[m-1][k] - chM[m-1][k]); diff > 1e-7 {
			t.Fatalf("chain word %d drifted: %g vs %g", k, chT[m-1][k], chM[m-1][k])
		}
	}
	if dv := math.Abs((ccv + cr2) - chM[m-1].Variance()); dv > 1e-7 {
		t.Fatalf("tracked chain variance drifted by %g", dv)
	}
	probe, pcv, pr2 := ops[m/2], cv[m/2], r2[m/2]
	tpT, _ := TightnessProbVar(probe, chT[m-1], pcv+pr2, ccv+cr2)
	tpM := TightnessProbViews(probe, chM[m-1])
	if math.Abs(tpT-tpM) > 1e-9 {
		t.Fatalf("chain tightness %g vs %g", tpT, tpM)
	}
}

// TestDotCoeffsMatchesCov pins DotCoeffs to the straight covariance dot.
func TestDotCoeffsMatchesCov(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, comps := range []int{0, 1, 2, 3, 4, 5, 17, 108} {
		space := Space{Globals: 3, Components: comps}
		bank := NewBank(space, 2)
		a, b := bank.Take(), bank.Take()
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		got := DotCoeffs(a, b)
		want := CovViews(a, b)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("comps=%d: DotCoeffs %g vs CovViews %g", comps, got, want)
		}
	}
}
