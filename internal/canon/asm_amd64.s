//go:build amd64

#include "textflag.h"

// AVX2/FMA kernels for the coefficient bodies of the tracked-variance
// chain. All loops tolerate unaligned operands (banks align forms to the
// stride, not to 32 bytes) and finish with an in-kernel scalar tail, so
// callers pass the full coefficient count. FMA contraction and
// lane-parallel accumulation reorder the arithmetic relative to the
// generic Go loops, which the kernel contract permits (chain.go).

// func dotVec(a, b *float64, n int) float64
TEXT ·dotVec(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ CX, AX
	SHRQ $3, AX
	JZ   dot_tail4
dot_loop8:
	VMOVUPD (SI), Y2
	VMOVUPD 32(SI), Y3
	VFMADD231PD (DI), Y2, Y0
	VFMADD231PD 32(DI), Y3, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ AX
	JNZ  dot_loop8
dot_tail4:
	VADDPD Y1, Y0, Y0
	TESTQ $4, CX
	JZ    dot_reduce
	VMOVUPD (SI), Y2
	VFMADD231PD (DI), Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI
dot_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VUNPCKHPD X0, X0, X1
	VADDSD X1, X0, X0
	MOVQ CX, AX
	ANDQ $3, AX
	JZ   dot_done
dot_scalar:
	VMOVSD (SI), X2
	VFMADD231SD (DI), X2, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ AX
	JNZ  dot_scalar
dot_done:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func dot3Vec(de, p, s *float64, n int) (dp, ds, ps float64)
TEXT ·dot3Vec(SB), NOSPLIT, $0-56
	MOVQ de+0(FP), SI
	MOVQ p+8(FP), DI
	MOVQ s+16(FP), DX
	MOVQ n+24(FP), CX
	VXORPD Y0, Y0, Y0 // de.p
	VXORPD Y1, Y1, Y1 // de.s
	VXORPD Y2, Y2, Y2 // p.s
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   d3_reduce
d3_loop4:
	VMOVUPD (SI), Y3
	VMOVUPD (DI), Y4
	VMOVUPD (DX), Y5
	VFMADD231PD Y4, Y3, Y0
	VFMADD231PD Y5, Y3, Y1
	VFMADD231PD Y5, Y4, Y2
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, DX
	DECQ AX
	JNZ  d3_loop4
d3_reduce:
	VEXTRACTF128 $1, Y0, X3
	VADDPD X3, X0, X0
	VUNPCKHPD X0, X0, X3
	VADDSD X3, X0, X0
	VEXTRACTF128 $1, Y1, X3
	VADDPD X3, X1, X1
	VUNPCKHPD X1, X1, X3
	VADDSD X3, X1, X1
	VEXTRACTF128 $1, Y2, X3
	VADDPD X3, X2, X2
	VUNPCKHPD X2, X2, X3
	VADDSD X3, X2, X2
	MOVQ CX, AX
	ANDQ $3, AX
	JZ   d3_done
d3_scalar:
	VMOVSD (SI), X3
	VMOVSD (DI), X4
	VMOVSD (DX), X5
	VFMADD231SD X4, X3, X0
	VFMADD231SD X5, X3, X1
	VFMADD231SD X5, X4, X2
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, DX
	DECQ AX
	JNZ  d3_scalar
d3_done:
	VMOVSD X0, dp+32(FP)
	VMOVSD X1, ds+40(FP)
	VMOVSD X2, ps+48(FP)
	VZEROUPPER
	RET

// func addSqVec(dst, a, b *float64, n int) float64
TEXT ·addSqVec(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   as_reduce
as_loop4:
	VMOVUPD (SI), Y2
	VADDPD (DI), Y2, Y2
	VMOVUPD Y2, (DX)
	VFMADD231PD Y2, Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, DX
	DECQ AX
	JNZ  as_loop4
as_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VUNPCKHPD X0, X0, X1
	VADDSD X1, X0, X0
	MOVQ CX, AX
	ANDQ $3, AX
	JZ   as_done
as_scalar:
	VMOVSD (SI), X2
	VADDSD (DI), X2, X2
	VMOVSD X2, (DX)
	VFMADD231SD X2, X2, X0
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, DX
	DECQ AX
	JNZ  as_scalar
as_done:
	VMOVSD X0, ret+32(FP)
	VZEROUPPER
	RET

// func blendSqVec(dst, a, b *float64, n int, tp, tq float64) float64
TEXT ·blendSqVec(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ n+24(FP), CX
	VBROADCASTSD tp+32(FP), Y6
	VBROADCASTSD tq+40(FP), Y7
	VXORPD Y0, Y0, Y0
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   bl_reduce
bl_loop4:
	VMOVUPD (SI), Y2
	VMULPD Y6, Y2, Y2
	VMOVUPD (DI), Y3
	VFMADD231PD Y7, Y3, Y2
	VMOVUPD Y2, (DX)
	VFMADD231PD Y2, Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, DX
	DECQ AX
	JNZ  bl_loop4
bl_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VUNPCKHPD X0, X0, X1
	VADDSD X1, X0, X0
	MOVQ CX, AX
	ANDQ $3, AX
	JZ   bl_done
bl_scalar:
	VMOVSD (SI), X2
	VMULSD X6, X2, X2
	VMOVSD (DI), X3
	VFMADD231SD X7, X3, X2
	VMOVSD X2, (DX)
	VFMADD231SD X2, X2, X0
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, DX
	DECQ AX
	JNZ  bl_scalar
bl_done:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
