package canon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCovBilinearity: Cov(aX + bY, Z) = a Cov(X,Z) + b Cov(Y,Z) for the
// shared-coefficient part.
func TestCovBilinearity(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 10)
		b = math.Mod(b, 10)
		rng := rand.New(rand.NewSource(seed))
		x := randomForm(rng, testSpace)
		y := randomForm(rng, testSpace)
		z := randomForm(rng, testSpace)
		lhs := Add(x.Scale(a), y.Scale(b))
		want := a*Cov(x, z) + b*Cov(y, z)
		return math.Abs(Cov(lhs, z)-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVarCovMatchesSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		va, vb, cov := VarCov(a, b)
		if math.Abs(va-a.Variance()) > 1e-12 || math.Abs(vb-b.Variance()) > 1e-12 {
			t.Fatal("VarCov variances disagree with Variance()")
		}
		if math.Abs(cov-Cov(a, b)) > 1e-12 {
			t.Fatal("VarCov covariance disagrees with Cov()")
		}
	}
}

// TestMaxThreeWayAgainstMC: folding Max over three operands stays close to
// sampling even though the fold order is arbitrary.
func TestMaxThreeWayAgainstMC(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fs := make([]*Form, 3)
	for i := range fs {
		f := testSpace.Const(10 + float64(i))
		f.Glob[0] = 1 + 0.5*float64(i)
		f.Loc[i] = 2
		f.Rand = 0.5
		fs[i] = f
	}
	m, err := MaxAll(fs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var sum, sumsq float64
	g := make([]float64, testSpace.Globals)
	x := make([]float64, testSpace.Components)
	for s := 0; s < n; s++ {
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		best := math.Inf(-1)
		for _, f := range fs {
			if v := f.Sample(g, x, rng.NormFloat64()); v > best {
				best = v
			}
		}
		sum += best
		sumsq += best * best
	}
	mcMean := sum / n
	mcStd := math.Sqrt(sumsq/n - mcMean*mcMean)
	if math.Abs(m.Mean()-mcMean) > 0.03*mcMean {
		t.Fatalf("3-way max mean %g vs MC %g", m.Mean(), mcMean)
	}
	if math.Abs(m.Std()-mcStd) > 0.10*mcStd {
		t.Fatalf("3-way max std %g vs MC %g", m.Std(), mcStd)
	}
}

// TestMaxMonotoneInMeanShift: shifting one operand up cannot lower the max
// mean.
func TestMaxMonotoneInMeanShift(t *testing.T) {
	f := func(seed int64, shiftRaw float64) bool {
		shift := math.Abs(math.Mod(shiftRaw, 50))
		rng := rand.New(rand.NewSource(seed))
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		m1 := Max(a, b)
		m2 := Max(a, b.AddConst(shift))
		return m2.Mean() >= m1.Mean()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSumThenMaxUpperBound: E[max(A,B)] <= E[A] + E[B] for non-negative
// forms (crude sanity bound used in code reviews of Clark implementations).
func TestMaxMeanUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		// Make means positive.
		a.Nominal = math.Abs(a.Nominal) + 1
		b.Nominal = math.Abs(b.Nominal) + 1
		m := Max(a, b)
		// Upper bound: max <= a + b pointwise fails in general, but
		// E[max] <= E[a] + E[b] holds for positive-mean Gaussians with
		// moderate sigma; guard the regime.
		if a.Std() < a.Nominal && b.Std() < b.Nominal {
			if m.Mean() > a.Mean()+b.Mean() {
				t.Fatalf("max mean %g above sum of means %g", m.Mean(), a.Mean()+b.Mean())
			}
		}
	}
}

func TestAddIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randomForm(rng, testSpace)
	b := randomForm(rng, testSpace)
	want := Add(a, b)
	dst := a.Clone()
	AddInto(dst, dst, b)
	if math.Abs(dst.Mean()-want.Mean()) > 1e-12 || math.Abs(dst.Variance()-want.Variance()) > 1e-12 {
		t.Fatal("AddInto with dst==a differs from Add")
	}
}

func TestScaleZero(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randomForm(rng, testSpace)
	z := a.Scale(0)
	if z.Mean() != 0 || z.Variance() != 0 {
		t.Fatalf("Scale(0) not deterministic zero: %v", z)
	}
}

func TestQuantileMedianIsMean(t *testing.T) {
	f := testSpace.Const(42)
	f.Rand = 7
	if q := f.Quantile(0.5); math.Abs(q-42) > 1e-9 {
		t.Fatalf("median %g != mean 42", q)
	}
}

func TestTightnessProbComplement(t *testing.T) {
	// TP(a,b) + TP(b,a) = 1 for non-degenerate pairs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomForm(rng, testSpace)
		b := randomForm(rng, testSpace)
		s := TightnessProb(a, b) + TightnessProb(b, a)
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
