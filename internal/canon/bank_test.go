package canon

import (
	"math"
	"math/rand"
	"testing"
)

const kernelTol = 1e-12

// relDiff is |a-b| scaled by max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / scale
}

func viewOf(b *Bank, f *Form) View {
	v := b.Take()
	v.LoadForm(f)
	return v
}

func formsEqual(t *testing.T, what string, f *Form, v View, s Space) {
	t.Helper()
	g := v.Form(s)
	if relDiff(f.Nominal, g.Nominal) > kernelTol {
		t.Fatalf("%s: Nominal %g vs %g", what, f.Nominal, g.Nominal)
	}
	if relDiff(f.Rand, g.Rand) > kernelTol {
		t.Fatalf("%s: Rand %g vs %g", what, f.Rand, g.Rand)
	}
	for i := range f.Glob {
		if relDiff(f.Glob[i], g.Glob[i]) > kernelTol {
			t.Fatalf("%s: Glob[%d] %g vs %g", what, i, f.Glob[i], g.Glob[i])
		}
	}
	for i := range f.Loc {
		if relDiff(f.Loc[i], g.Loc[i]) > kernelTol {
			t.Fatalf("%s: Loc[%d] %g vs %g", what, i, f.Loc[i], g.Loc[i])
		}
	}
}

// TestViewKernelsMatchFormKernels drives the fused flat kernels and the
// pointer-based reference kernels over the same random operands and
// requires agreement at 1e-12 — the arena engine's numerical contract.
func TestViewKernelsMatchFormKernels(t *testing.T) {
	space := Space{Globals: 3, Components: 7}
	rng := rand.New(rand.NewSource(7))
	bank := NewBank(space, 8)
	for iter := 0; iter < 500; iter++ {
		a, b := randomForm(rng, space), randomForm(rng, space)
		// Delay-like means so Max exercises both branches of the blend.
		a.Nominal = 50 + 20*rng.Float64()
		b.Nominal = 50 + 20*rng.Float64()

		bank.Reset()
		av, bv := viewOf(bank, a), viewOf(bank, b)
		formsEqual(t, "LoadForm/Form roundtrip", a, av, space)

		if relDiff(a.Variance(), av.Variance()) > kernelTol {
			t.Fatalf("Variance: %g vs %g", a.Variance(), av.Variance())
		}
		va, vb, cov := VarCov(a, b)
		wa, wb, wcov := VarCovViews(av, bv)
		if relDiff(va, wa) > kernelTol || relDiff(vb, wb) > kernelTol || relDiff(cov, wcov) > kernelTol {
			t.Fatalf("VarCov: (%g,%g,%g) vs (%g,%g,%g)", va, vb, cov, wa, wb, wcov)
		}
		if relDiff(Cov(a, b), CovViews(av, bv)) > kernelTol {
			t.Fatalf("Cov: %g vs %g", Cov(a, b), CovViews(av, bv))
		}

		sum := Add(a, b)
		sv := bank.Take()
		AddViews(sv, av, bv)
		formsEqual(t, "Add", sum, sv, space)

		// The mixed-operand kernel (first-pass path) must agree too.
		fv := bank.Take()
		AddFormView(fv, av, b)
		for i := range sv {
			if fv[i] != sv[i] {
				t.Fatalf("AddFormView slot %d: %g vs AddViews %g", i, fv[i], sv[i])
			}
		}

		mx := Max(a, b)
		mv := bank.Take()
		MaxViews(mv, av, bv)
		formsEqual(t, "Max", mx, mv, space)

		tp := TightnessProb(a, b)
		tpv := TightnessProbViews(av, bv)
		if relDiff(tp, tpv) > kernelTol {
			t.Fatalf("TightnessProb: %g vs %g", tp, tpv)
		}
	}
}

// TestViewKernelsAliasing checks the documented dst==a aliasing of the
// fused kernels against out-of-place references.
func TestViewKernelsAliasing(t *testing.T) {
	space := Space{Globals: 2, Components: 4}
	rng := rand.New(rand.NewSource(11))
	bank := NewBank(space, 4)
	a, b := randomForm(rng, space), randomForm(rng, space)
	a.Nominal, b.Nominal = 10, 11

	bank.Reset()
	av, bv := viewOf(bank, a), viewOf(bank, b)
	want := bank.Take()
	AddViews(want, av, bv)
	AddViews(av, av, bv) // aliased
	for i := range want {
		if av[i] != want[i] {
			t.Fatalf("AddViews aliasing: slot %d: %g vs %g", i, av[i], want[i])
		}
	}

	bank.Reset()
	av, bv = viewOf(bank, a), viewOf(bank, b)
	want = bank.Take()
	MaxViews(want, av, bv)
	MaxViews(av, av, bv) // aliased
	for i := range want {
		if av[i] != want[i] {
			t.Fatalf("MaxViews aliasing: slot %d: %g vs %g", i, av[i], want[i])
		}
	}
}

// TestViewDegenerateMax mirrors the pointer kernels' theta~0 tie-breaking.
func TestViewDegenerateMax(t *testing.T) {
	space := Space{Globals: 1, Components: 1}
	bank := NewBank(space, 3)
	a, b := space.Const(5), space.Const(7)
	a.Glob[0], b.Glob[0] = 1, 1 // identical shared parts: theta = 0
	av, bv := viewOf(bank, a), viewOf(bank, b)
	dst := bank.Take()
	MaxViews(dst, av, bv)
	formsEqual(t, "degenerate max", Max(a, b), dst, space)
	if dst.Nominal() != 7 {
		t.Fatalf("degenerate max picked %g, want 7", dst.Nominal())
	}
	if got := TightnessProbViews(av, bv); got != 0 {
		t.Fatalf("degenerate TP = %g, want 0", got)
	}
}

// TestAddSqrtMatchesHypot is the regression fence for replacing math.Hypot
// with Sqrt(a*a+b*b) in the add kernels: over the whole magnitude range of
// delay coefficients the two agree to 1e-12 relative.
func TestAddSqrtMatchesHypot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		// ps-scale delay sigmas: from sub-femtosecond noise to microseconds.
		ea, eb := rng.Float64()*18-9, rng.Float64()*18-9
		a := rng.Float64() * math.Pow(10, ea)
		b := rng.Float64() * math.Pow(10, eb)
		want := math.Hypot(a, b)
		got := math.Sqrt(a*a + b*b)
		if relDiff(want, got) > 1e-12 {
			t.Fatalf("sqrt(a²+b²) diverges from hypot at a=%g b=%g: %g vs %g", a, b, got, want)
		}
	}
	// The zero corner stays exact.
	if math.Sqrt(0*0+0*0) != 0 {
		t.Fatal("zero corner")
	}
}

func TestBankTakeResetExhaustion(t *testing.T) {
	space := Space{Globals: 1, Components: 2}
	bank := NewBank(space, 2)
	if bank.Cap() != 2 || bank.Space() != space {
		t.Fatalf("bank shape: cap=%d space=%+v", bank.Cap(), bank.Space())
	}
	v := bank.Take()
	if len(v) != space.Stride() {
		t.Fatalf("stride %d, want %d", len(v), space.Stride())
	}
	v.SetConst(3)
	if v.Nominal() != 3 || v.Variance() != 0 {
		t.Fatalf("SetConst: %+v", v)
	}
	bank.Take()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Take past capacity did not panic")
			}
		}()
		bank.Take()
	}()
	bank.Reset()
	if got := bank.Take(); got.Nominal() != 3 {
		t.Fatal("Reset did not rewind to slot 0")
	}
	bank.Reset()
	if vs := bank.TakeBlock(2); len(vs) != 2 || len(vs[0]) != space.Stride() {
		t.Fatalf("TakeBlock: %v", vs)
	}
}

func TestViewAccessors(t *testing.T) {
	space := Space{Globals: 2, Components: 3}
	f := space.NewForm()
	f.Nominal, f.Rand = 4, 2
	f.Glob[1], f.Loc[2] = 5, 6
	bank := NewBank(space, 1)
	v := viewOf(bank, f)
	if v.Nominal() != 4 || v.Rand() != 2 {
		t.Fatalf("accessors: %+v", v)
	}
	if c := v.Coeffs(); len(c) != space.Dim() || c[1] != 5 || c[4] != 6 {
		t.Fatalf("Coeffs: %v", v.Coeffs())
	}
	v.SetNominal(9)
	if v.Nominal() != 9 {
		t.Fatal("SetNominal")
	}
	if v.Std() != math.Sqrt(4+25+36) {
		t.Fatalf("Std: %g", v.Std())
	}
}
