//go:build amd64

package canon

// AVX2/FMA vector kernels for the hot criticality loops (asm_amd64.s).
// They cover only the shared-coefficient body of a View — the nominal and
// private-random words stay in Go — and each carries a full scalar tail,
// so the dispatchers hand over the whole coefficient range. Lane-parallel
// accumulation changes the summation order relative to the generic loops,
// which is within the kernels' documented contract (no cross-kernel bit
// identity; see chain.go). Dispatch is decided once at init, so every
// evaluation in a process — exact, screened, incremental — runs the same
// code path and their bit-identity guarantees are unaffected.

//go:noescape
func dotVec(a, b *float64, n int) float64

//go:noescape
func dot3Vec(de, p, s *float64, n int) (dp, ds, ps float64)

//go:noescape
func addSqVec(dst, a, b *float64, n int) float64

//go:noescape
func blendSqVec(dst, a, b *float64, n int, tp, tq float64) float64

func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// useAsm reports AVX2 + FMA with OS-enabled YMM state.
var useAsm = func() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const osxsave, avx, fma = 1 << 27, 1 << 28, 1 << 12
	if c1&osxsave == 0 || c1&avx == 0 || c1&fma == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 { // XMM and YMM state saved
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	return b7&(1<<5) != 0 // AVX2
}()

// 512-bit kernel variants were tried and measured slower end-to-end on the
// target Xeon: the views are only 8-byte aligned, so every 64-byte load
// splits a cache line, and the ZMM license frequency drop taxes the scalar
// Clark/CDF code interleaved between kernel calls. The engine stays on
// 256-bit VEX.
