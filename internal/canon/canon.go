// Package canon implements the canonical first-order delay form of the
// paper's Section II and its statistical operations.
//
// A delay is represented as
//
//	d = Nominal + sum_g Glob[g]*G_g + sum_k Loc[k]*X_k + Rand*R
//
// where G_g are global process variables shared by every delay in the whole
// design (one per process parameter), X_k are independent unit-variance
// components obtained by PCA of the spatially correlated grid variables
// (paper eq. 2-3), and R is a private standard normal modeling purely random
// variation. All variables are independent N(0,1), so
//
//	Var(d)    = |Glob|^2 + |Loc|^2 + Rand^2
//	Cov(a, b) = Glob_a . Glob_b + Loc_a . Loc_b
//
// Sum adds coefficients and combines the private random parts by
// root-sum-of-squares (paper Section II). Max uses Clark's moment matching
// with the tightness probability (paper eqs. 6-9).
//
// Forms exist in two representations. *Form is the pointer-based boundary
// type used for construction, serialization and reporting. The propagation
// hot path instead runs on flat storage: a Bank is one contiguous
// structure-of-arrays arena holding many forms at stride Dim()+2, a View is
// one form inside it, and the fused view kernels (AddViews, MaxViews,
// VarCovViews, TightnessProbViews — see bank.go) are numerically equivalent
// to the *Form kernels at 1e-12 while allocating nothing.
package canon

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Space fixes the dimensionality of the shared variables of a set of forms.
// Forms from different spaces must never be combined.
type Space struct {
	Globals    int // number of global variables (one per process parameter)
	Components int // number of PCA components (parameters x retained grid components)
}

// Dim returns the number of shared random variables.
func (s Space) Dim() int { return s.Globals + s.Components }

// Form is one canonical first-order delay expression. The zero value is not
// usable; construct forms with Space.Const or Space.NewForm.
type Form struct {
	Nominal float64
	Glob    []float64 // length Space.Globals
	Loc     []float64 // length Space.Components
	Rand    float64   // coefficient of the private N(0,1); always >= 0
}

// NewForm returns a zero-valued form in the space.
func (s Space) NewForm() *Form {
	return &Form{Glob: make([]float64, s.Globals), Loc: make([]float64, s.Components)}
}

// Const returns a deterministic form with the given nominal value.
func (s Space) Const(v float64) *Form {
	f := s.NewForm()
	f.Nominal = v
	return f
}

// In reports whether the form has the dimensions of the space.
func (f *Form) In(s Space) bool {
	return len(f.Glob) == s.Globals && len(f.Loc) == s.Components
}

// Clone returns a deep copy.
func (f *Form) Clone() *Form {
	g := &Form{
		Nominal: f.Nominal,
		Glob:    make([]float64, len(f.Glob)),
		Loc:     make([]float64, len(f.Loc)),
		Rand:    f.Rand,
	}
	copy(g.Glob, f.Glob)
	copy(g.Loc, f.Loc)
	return g
}

// Mean returns the mean of the form. For the first-order canonical model the
// mean is the nominal value.
func (f *Form) Mean() float64 { return f.Nominal }

// Variance returns the variance of the form.
func (f *Form) Variance() float64 {
	var s float64
	for _, v := range f.Glob {
		s += v * v
	}
	for _, v := range f.Loc {
		s += v * v
	}
	return s + f.Rand*f.Rand
}

// Std returns the standard deviation.
func (f *Form) Std() float64 { return math.Sqrt(f.Variance()) }

// Cov returns the covariance of two forms. Private random parts never
// co-vary.
func Cov(a, b *Form) float64 {
	var s float64
	for i, v := range a.Glob {
		s += v * b.Glob[i]
	}
	for i, v := range a.Loc {
		s += v * b.Loc[i]
	}
	return s
}

// VarCov returns Var(a), Var(b) and Cov(a, b) in a single pass over the
// coefficient vectors (hot path of the criticality engine).
func VarCov(a, b *Form) (va, vb, cov float64) {
	for i, x := range a.Glob {
		y := b.Glob[i]
		va += x * x
		vb += y * y
		cov += x * y
	}
	for i, x := range a.Loc {
		y := b.Loc[i]
		va += x * x
		vb += y * y
		cov += x * y
	}
	va += a.Rand * a.Rand
	vb += b.Rand * b.Rand
	return va, vb, cov
}

// Corr returns the correlation coefficient of two forms; 0 when either is
// deterministic.
func Corr(a, b *Form) float64 {
	sa, sb := a.Std(), b.Std()
	if sa == 0 || sb == 0 {
		return 0
	}
	return Cov(a, b) / (sa * sb)
}

// Add returns a+b as a new form.
func Add(a, b *Form) *Form {
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// AddInPlace accumulates b into f (f += b). Private random parts combine by
// root-sum-of-squares so the result variance is exact.
//
// The combine is a plain Sqrt(a*a+b*b) rather than math.Hypot: Hypot's
// overflow/underflow guard costs ~4x per call and delay coefficients are
// always far from the float64 extremes (see TestAddSqrtMatchesHypot).
func (f *Form) AddInPlace(b *Form) {
	f.Nominal += b.Nominal
	for i, v := range b.Glob {
		f.Glob[i] += v
	}
	for i, v := range b.Loc {
		f.Loc[i] += v
	}
	f.Rand = math.Sqrt(f.Rand*f.Rand + b.Rand*b.Rand)
}

// AddInto computes a+b into dst. dst may alias a (but not b).
func AddInto(dst, a, b *Form) {
	dst.Nominal = a.Nominal + b.Nominal
	for i := range dst.Glob {
		dst.Glob[i] = a.Glob[i] + b.Glob[i]
	}
	for i := range dst.Loc {
		dst.Loc[i] = a.Loc[i] + b.Loc[i]
	}
	dst.Rand = math.Sqrt(a.Rand*a.Rand + b.Rand*b.Rand)
}

// Copy copies src into dst (shapes must match).
func Copy(dst, src *Form) { copyInto(dst, src) }

// AddConst returns the form shifted by constant c.
func (f *Form) AddConst(c float64) *Form {
	out := f.Clone()
	out.Nominal += c
	return out
}

// Scale returns s*f. Negative s flips coefficient signs; Rand stays
// non-negative.
func (f *Form) Scale(s float64) *Form {
	out := f.Clone()
	out.Nominal *= s
	for i := range out.Glob {
		out.Glob[i] *= s
	}
	for i := range out.Loc {
		out.Loc[i] *= s
	}
	out.Rand = math.Abs(out.Rand * s)
	return out
}

// thetaEps guards the degenerate max case: when the two operands are (nearly)
// perfectly correlated with (nearly) equal variance, theta -> 0 and the
// tightness probability becomes a step function of the mean difference.
const thetaEps = 1e-12

// TightnessProb returns TP = P(A >= B) per paper eq. 6, with the degenerate
// theta ~ 0 case resolved by comparing means (and variances for ties).
func TightnessProb(a, b *Form) float64 {
	va, vb, cov := VarCov(a, b)
	theta := thetaOf(va, vb, cov)
	if theta < thetaEps {
		switch {
		case a.Nominal > b.Nominal:
			return 1
		case a.Nominal < b.Nominal:
			return 0
		default:
			return 0.5
		}
	}
	return stats.NormCDF((a.Nominal - b.Nominal) / theta)
}

func thetaOf(va, vb, cov float64) float64 {
	t2 := va + vb - 2*cov
	if t2 < 0 {
		t2 = 0
	}
	return math.Sqrt(t2)
}

// Max returns Clark's moment-matched approximation of max(a, b) in canonical
// form (paper eqs. 6-9): the shared coefficients are the TP-weighted blend
// and the private random coefficient is set to match the Clark variance.
func Max(a, b *Form) *Form {
	out := a.Clone()
	MaxInto(out, a, b)
	return out
}

// MaxInto computes max(a, b) into dst. dst may alias a (but not b). The
// variances and covariance come from one fused VarCov pass, so the whole
// operation reads each coefficient vector exactly once before the blend.
func MaxInto(dst, a, b *Form) {
	va, vb, cov := VarCov(a, b)
	theta := thetaOf(va, vb, cov)
	if theta < thetaEps {
		// Operands are essentially the same random variable up to a mean
		// shift: max is whichever has the larger mean.
		src := a
		if b.Nominal > a.Nominal {
			src = b
		}
		copyInto(dst, src)
		return
	}
	z := (a.Nominal - b.Nominal) / theta
	tp := stats.NormCDF(z)
	phi := stats.NormPDF(z)

	mean := tp*a.Nominal + (1-tp)*b.Nominal + theta*phi
	second := tp*(va+a.Nominal*a.Nominal) + (1-tp)*(vb+b.Nominal*b.Nominal) +
		(a.Nominal+b.Nominal)*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}

	// Blend shared coefficients (eq. 9) — this preserves covariances with
	// other forms to first order (Clark 1961).
	var shared float64
	for i := range dst.Glob {
		c := tp*a.Glob[i] + (1-tp)*b.Glob[i]
		dst.Glob[i] = c
		shared += c * c
	}
	for i := range dst.Loc {
		c := tp*a.Loc[i] + (1-tp)*b.Loc[i]
		dst.Loc[i] = c
		shared += c * c
	}
	dst.Nominal = mean
	rest := variance - shared
	if rest < 0 {
		// The blended shared part already exceeds the Clark variance; the
		// closest representable form drops the private part. This
		// over-estimates variance slightly and is the standard fix.
		rest = 0
	}
	dst.Rand = math.Sqrt(rest)
}

func copyInto(dst, src *Form) {
	dst.Nominal = src.Nominal
	copy(dst.Glob, src.Glob)
	copy(dst.Loc, src.Loc)
	dst.Rand = src.Rand
}

// MaxAll folds Max over a non-empty slice of forms.
func MaxAll(fs []*Form) (*Form, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("canon: MaxAll of empty slice")
	}
	out := fs[0].Clone()
	for _, f := range fs[1:] {
		MaxInto(out, out, f)
	}
	return out, nil
}

// Min returns the moment-matched statistical minimum of two forms — the
// Clark dual of Max via min(A, B) = -max(-A, -B) — used by earliest-arrival
// propagation and worst-slack folds.
func Min(a, b *Form) *Form {
	out := a.Clone()
	MinInto(out, a, b)
	return out
}

// MinInto computes min(a, b) into dst. dst may alias a (but not b). The
// structure mirrors MaxInto exactly: one fused VarCov pass, tightness
// tp = P(A <= B), mirrored mean/second-moment algebra, and the same
// shared-coefficient blend and variance-matching clamp.
func MinInto(dst, a, b *Form) {
	va, vb, cov := VarCov(a, b)
	theta := thetaOf(va, vb, cov)
	if theta < thetaEps {
		// Operands are essentially the same random variable up to a mean
		// shift: min is whichever has the smaller mean.
		src := a
		if b.Nominal < a.Nominal {
			src = b
		}
		copyInto(dst, src)
		return
	}
	z := (b.Nominal - a.Nominal) / theta
	tp := stats.NormCDF(z) // P(A <= B)
	phi := stats.NormPDF(z)

	mean := tp*a.Nominal + (1-tp)*b.Nominal - theta*phi
	second := tp*(va+a.Nominal*a.Nominal) + (1-tp)*(vb+b.Nominal*b.Nominal) -
		(a.Nominal+b.Nominal)*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}

	// Blend shared coefficients with the min-tightness weights — the mirror
	// of the eq. 9 blend, preserving covariances to first order.
	var shared float64
	for i := range dst.Glob {
		c := tp*a.Glob[i] + (1-tp)*b.Glob[i]
		dst.Glob[i] = c
		shared += c * c
	}
	for i := range dst.Loc {
		c := tp*a.Loc[i] + (1-tp)*b.Loc[i]
		dst.Loc[i] = c
		shared += c * c
	}
	dst.Nominal = mean
	rest := variance - shared
	if rest < 0 {
		rest = 0
	}
	dst.Rand = math.Sqrt(rest)
}

// MinAll folds a slice of forms with MinInto, left to right — the
// worst-slack aggregation over registers.
func MinAll(fs []*Form) (*Form, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("canon: MinAll of empty slice")
	}
	out := fs[0].Clone()
	for _, f := range fs[1:] {
		MinInto(out, out, f)
	}
	return out, nil
}

// Sub returns a - b as a canonical form: coefficients subtract and the
// private random parts combine by root-sum-of-squares (a and b are
// independent in their private parts). This is the slack algebra —
// e.g. slack = constraint - arrival.
func Sub(a, b *Form) *Form {
	out := a.Clone()
	out.Nominal = a.Nominal - b.Nominal
	for i := range out.Glob {
		out.Glob[i] = a.Glob[i] - b.Glob[i]
	}
	for i := range out.Loc {
		out.Loc[i] = a.Loc[i] - b.Loc[i]
	}
	out.Rand = math.Sqrt(a.Rand*a.Rand + b.Rand*b.Rand)
	return out
}

// Sample evaluates the form at a concrete realization of the shared
// variables: g has length Globals, x has length Components, r is the private
// standard normal draw.
func (f *Form) Sample(g, x []float64, r float64) float64 {
	v := f.Nominal
	for i, c := range f.Glob {
		v += c * g[i]
	}
	for i, c := range f.Loc {
		v += c * x[i]
	}
	return v + f.Rand*r
}

// CDF returns the Gaussian CDF of the form evaluated at t.
func (f *Form) CDF(t float64) float64 {
	sd := f.Std()
	if sd == 0 {
		if t >= f.Nominal {
			return 1
		}
		return 0
	}
	return stats.NormCDF((t - f.Nominal) / sd)
}

// Quantile returns the Gaussian p-quantile of the form.
func (f *Form) Quantile(p float64) float64 {
	return f.Nominal + f.Std()*stats.NormQuantile(p)
}

// String renders a compact human-readable description.
func (f *Form) String() string {
	return fmt.Sprintf("N(%.4g, %.4g^2)", f.Mean(), f.Std())
}
