package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(0, 3) did not panic")
		}
	}()
	NewDense(0, 3)
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	m.Set(1, 0, -2)
	if m.At(0, 1) != 3.5 || m.At(1, 0) != -2 {
		t.Fatalf("Set/At roundtrip failed: %v", m.data)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g, want 3", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged FromRows did not error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty FromRows did not error")
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity At(%d,%d) = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", tr.data)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul At(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := Mul(a, NewDense(3, 2)); err == nil {
		t.Fatal("dimension mismatch did not error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := m.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("MulVec mismatch did not error")
	}
}

func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewDense(5, 3)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	x := []float64{1.5, -2, 0.25, 3, -1}
	got, err := m.MulVecT(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.T().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecT[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := m.MulVecT([]float64{1}); err == nil {
		t.Fatal("MulVecT mismatch did not error")
	}
}

// randomPSD builds a random symmetric positive semi-definite matrix
// M = B B^T scaled to unit-ish diagonal.
func randomPSD(n int, rng *rand.Rand) *Dense {
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	m, _ := Mul(b, b.T())
	return m
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 8, 25} {
		a := randomPSD(n, rng)
		eig, err := EigenSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Reconstruct V diag(L) V^T.
		vl := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vl.Set(i, j, eig.Vectors.At(i, j)*eig.Values[j])
			}
		}
		rec, _ := Mul(vl, eig.Vectors.T())
		d, _ := MaxAbsDiff(a, rec)
		if d > 1e-8*(1+maxAbs(a)) {
			t.Fatalf("n=%d: reconstruction error %g too large", n, d)
		}
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomPSD(10, rng)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	vtv, _ := Mul(eig.Vectors.T(), eig.Vectors)
	d, _ := MaxAbsDiff(vtv, Identity(10))
	if d > 1e-9 {
		t.Fatalf("V^T V differs from identity by %g", d)
	}
}

func TestEigenSymSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomPSD(12, rng)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(eig.Values); i++ {
		if eig.Values[i] > eig.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", eig.Values)
		}
	}
	// PSD input: all eigenvalues >= -tol.
	for _, v := range eig.Values {
		if v < -1e-8 {
			t.Fatalf("PSD matrix produced negative eigenvalue %g", v)
		}
	}
}

func TestEigenSymKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-12 || math.Abs(eig.Values[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [3 1]", eig.Values)
	}
}

func TestEigenSymRejectsNonSymmetric(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {0, 1}})
	if _, err := EigenSym(a); err == nil {
		t.Fatal("non-symmetric input did not error")
	}
	if _, err := EigenSym(NewDense(2, 3)); err == nil {
		t.Fatal("non-square input did not error")
	}
}

func TestCholeskyRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 20} {
		a := randomPSD(n, rng)
		// Make strictly PD by adding to the diagonal.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+0.5)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec, _ := Mul(l, l.T())
		d, _ := MaxAbsDiff(a, rec)
		if d > 1e-8*(1+maxAbs(a)) {
			t.Fatalf("n=%d: LL^T error %g", n, d)
		}
		// Lower triangular check.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L not lower triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCholeskySemiDefinite(t *testing.T) {
	// Rank-1 PSD matrix: ones everywhere.
	a, _ := FromRows([][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := Mul(l, l.T())
	d, _ := MaxAbsDiff(a, rec)
	if d > 1e-8 {
		t.Fatalf("PSD Cholesky error %g", d)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix did not error")
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	if _, err := MaxAbsDiff(NewDense(2, 2), NewDense(2, 3)); err == nil {
		t.Fatal("shape mismatch did not error")
	}
}

// Property: for any PSD matrix, the Jacobi decomposition reconstructs it and
// the eigenvector matrix is orthogonal.
func TestEigenSymPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomPSD(n, rng)
		eig, err := EigenSym(a)
		if err != nil {
			return false
		}
		vtv, _ := Mul(eig.Vectors.T(), eig.Vectors)
		d, _ := MaxAbsDiff(vtv, Identity(n))
		return d < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky of L L^T + eps I reproduces the input.
func TestCholeskyPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randomPSD(n, rng)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+0.25)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		rec, _ := Mul(l, l.T())
		d, _ := MaxAbsDiff(a, rec)
		return d < 1e-7*(1+maxAbs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestRowIsView(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	r[0] = 7
	if a.At(1, 0) != 7 {
		t.Fatal("Row should be a view into the matrix")
	}
}
