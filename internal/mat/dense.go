// Package mat provides the small dense linear-algebra substrate used by the
// SSTA engine: dense matrices, a symmetric Jacobi eigendecomposition for the
// PCA of spatial-correlation covariance matrices, and a Cholesky
// factorization for Monte Carlo sampling of correlated Gaussians.
//
// The package is deliberately minimal and stdlib-only. Matrices in this
// project are covariance matrices over die grids — typically tens to a few
// hundreds of rows — so O(n^3) dense algorithms are more than fast enough.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: FromRows needs at least one non-empty row")
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mat: ragged rows: row %d has %d entries, want %d", i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m*x for a column vector x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MulVecT returns m^T * x, i.e. the vector whose j-th entry is the dot
// product of column j of m with x. This avoids materializing the transpose
// in the hot replacement path.
func (m *Dense) MulVecT(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("mat: MulVecT dimension mismatch %dx%d^T * %d", m.rows, m.cols, len(x))
	}
	out := make([]float64, m.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out, nil
}

// IsSymmetric reports whether the matrix is square and symmetric to within
// tol in absolute terms.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference between two
// equal-shaped matrices.
func MaxAbsDiff(a, b *Dense) (float64, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return 0, fmt.Errorf("mat: MaxAbsDiff shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	var d float64
	for i, v := range a.data {
		d = math.Max(d, math.Abs(v-b.data[i]))
	}
	return d, nil
}
