package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigenDiagonalMatrix(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, 2)
	a.Set(2, 2, 9)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 5, 2}
	for i, v := range want {
		if math.Abs(eig.Values[i]-v) > 1e-12 {
			t.Fatalf("eigenvalues = %v, want %v", eig.Values, want)
		}
	}
}

func TestEigenSize1(t *testing.T) {
	a := NewDense(1, 1)
	a.Set(0, 0, 4)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if eig.Values[0] != 4 || math.Abs(eig.Vectors.At(0, 0)) != 1 {
		t.Fatalf("1x1 eigen: %v %v", eig.Values, eig.Vectors.At(0, 0))
	}
}

func TestCholeskyIdentity(t *testing.T) {
	l, err := Cholesky(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := MaxAbsDiff(l, Identity(4))
	if d > 1e-15 {
		t.Fatal("Cholesky of identity should be identity")
	}
}

// TestMulVecLinearity: M(ax + by) = a Mx + b My.
func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewDense(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 6)
		y := make([]float64, 6)
		comb := make([]float64, 6)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
			comb[i] = a*x[i] + b*y[i]
		}
		mc, err := m.MulVec(comb)
		if err != nil {
			return false
		}
		mx, _ := m.MulVec(x)
		my, _ := m.MulVec(y)
		for i := range mc {
			want := a*mx[i] + b*my[i]
			if math.Abs(mc[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mk := func(r, c int) *Dense {
		m := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		return m
	}
	a, b, c := mk(3, 4), mk(4, 5), mk(5, 2)
	ab, _ := Mul(a, b)
	abc1, _ := Mul(ab, c)
	bc, _ := Mul(b, c)
	abc2, _ := Mul(a, bc)
	d, _ := MaxAbsDiff(abc1, abc2)
	if d > 1e-12 {
		t.Fatalf("(AB)C != A(BC): %g", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewDense(3, 7)
	for i := 0; i < 3; i++ {
		for j := 0; j < 7; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	d, _ := MaxAbsDiff(m, m.T().T())
	if d != 0 {
		t.Fatal("T().T() changed the matrix")
	}
}
