package mat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: A = V diag(L) V^T
// with orthonormal eigenvector columns in V and eigenvalues L sorted in
// descending order.
type Eigen struct {
	Values  []float64
	Vectors *Dense // column j is the eigenvector for Values[j]
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence for
// symmetric matrices is quadratic; well-conditioned covariance matrices
// converge in well under 20 sweeps.
const maxJacobiSweeps = 100

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. The input is not modified. It returns an error when
// the matrix is not square/symmetric or the iteration fails to converge.
func EigenSym(a *Dense) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: EigenSym needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if !a.IsSymmetric(1e-9 * (1 + maxAbs(a))) {
		return nil, errors.New("mat: EigenSym needs a symmetric matrix")
	}
	n := a.rows
	w := a.Clone()
	v := Identity(n)

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+frobNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Classic stable rotation computation (Golub & Van Loan).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
		if sweep == maxJacobiSweeps-1 {
			return nil, errors.New("mat: EigenSym did not converge")
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return &Eigen{Values: sortedVals, Vectors: sortedVecs}, nil
}

// applyJacobiRotation applies the rotation J(p,q,c,s) as A <- J^T A J and
// accumulates V <- V J.
func applyJacobiRotation(a, v *Dense, p, q int, c, s float64) {
	n := a.rows
	for k := 0; k < n; k++ {
		akp := a.At(k, p)
		akq := a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk := a.At(p, k)
		aqk := a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(a *Dense) float64 {
	var s float64
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

func frobNorm(a *Dense) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

func maxAbs(a *Dense) float64 {
	var m float64
	for _, v := range a.data {
		m = math.Max(m, math.Abs(v))
	}
	return m
}

// Cholesky computes the lower-triangular factor L with A = L L^T for a
// symmetric positive semi-definite matrix. Small negative pivots (within
// tol of zero, as arise from clamped correlation models) are treated as
// zero; a pivot below -tol is an error.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Cholesky needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	tol := 1e-9 * (1 + maxAbs(a))
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		{
			s := a.At(j, j)
			lrow := l.Row(j)
			for k := 0; k < j; k++ {
				s -= lrow[k] * lrow[k]
			}
			diag = s
		}
		switch {
		case diag < -tol:
			return nil, fmt.Errorf("mat: Cholesky pivot %d is negative (%g): matrix not PSD", j, diag)
		case diag <= tol:
			// Semi-definite direction: zero column.
			l.Set(j, j, 0)
			continue
		}
		d := math.Sqrt(diag)
		l.Set(j, j, d)
		ljrow := l.Row(j)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lirow := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lirow[k] * ljrow[k]
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}
