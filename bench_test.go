// Benchmarks regenerating the paper's evaluation artifacts (see DESIGN.md
// experiment index):
//
//	BenchmarkTable1Extract/*   — Table I extraction runtime column (E1)
//	BenchmarkFig6Criticality   — Fig. 6 criticality engine on c7552 (E2)
//	BenchmarkFig7HierAnalysis  — Fig. 7 proposed hierarchical analysis (E3)
//	BenchmarkFig7GlobalOnly    — Fig. 7 baseline mode (E3)
//	BenchmarkFig7MonteCarlo    — Fig. 7 Monte Carlo ground truth (E3)
//	BenchmarkExtractDelta/*    — delta ablation (E4)
//	BenchmarkReplacement       — eq. 19 variable replacement (E5)
//	BenchmarkPropagate/*       — flat SSTA propagation (substrate)
//	BenchmarkSum/BenchmarkMax  — canonical-form micro-operations (substrate)
//	BenchmarkViewSum/ViewMax   — fused flat-view kernels (arena substrate)
//	BenchmarkArrivalPass/*     — pooled-arena exclusive passes (run with
//	                             -benchmem: allocs/op must stay O(1))
//
// The cmd/table1, cmd/fig6 and cmd/fig7 binaries print the corresponding
// tables/series; these benches measure the runtimes.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/ssta"
)

// benchGraph builds the timing graph for a named benchmark once.
func benchGraph(b *testing.B, name string) *ssta.Graph {
	b.Helper()
	g, _, err := ssta.DefaultFlow().BenchGraph(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSum(b *testing.B) {
	// Dimensions of a c7552-scale analysis: 3 globals, 3x36 components.
	space := canon.Space{Globals: 3, Components: 108}
	rng := rand.New(rand.NewSource(1))
	x, y := space.NewForm(), space.NewForm()
	for i := range x.Loc {
		x.Loc[i] = rng.NormFloat64()
		y.Loc[i] = rng.NormFloat64()
	}
	x.Rand, y.Rand = 1, 2
	dst := space.NewForm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canon.AddInto(dst, x, y)
	}
}

func BenchmarkMax(b *testing.B) {
	space := canon.Space{Globals: 3, Components: 108}
	rng := rand.New(rand.NewSource(1))
	x, y := space.NewForm(), space.NewForm()
	x.Nominal, y.Nominal = 100, 101
	for i := range x.Loc {
		x.Loc[i] = rng.NormFloat64()
		y.Loc[i] = rng.NormFloat64()
	}
	x.Rand, y.Rand = 1, 2
	dst := space.NewForm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canon.MaxInto(dst, x, y)
	}
}

func BenchmarkViewSum(b *testing.B) {
	space := canon.Space{Globals: 3, Components: 108}
	rng := rand.New(rand.NewSource(1))
	bank := canon.NewBank(space, 3)
	x, y, dst := bank.Take(), bank.Take(), bank.Take()
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canon.AddViews(dst, x, y)
	}
}

func BenchmarkViewMax(b *testing.B) {
	space := canon.Space{Globals: 3, Components: 108}
	rng := rand.New(rand.NewSource(1))
	bank := canon.NewBank(space, 3)
	x, y, dst := bank.Take(), bank.Take(), bank.Take()
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	x.SetNominal(100)
	y.SetNominal(101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canon.MaxViews(dst, x, y)
	}
}

// BenchmarkArrivalPass measures one pooled-arena exclusive forward pass —
// the unit of work the all-pairs extraction scheme repeats per input. With
// -benchmem the allocs/op column is the tentpole contract: O(1), not
// O(vertices).
func BenchmarkArrivalPass(b *testing.B) {
	for _, name := range []string{"c432", "c1908", "c7552"} {
		g := benchGraph(b, name)
		in := g.Inputs[0]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := g.AcquirePass()
				if err := p.Arrivals(in); err != nil {
					b.Fatal(err)
				}
				p.Release()
			}
		})
	}
}

func BenchmarkPropagate(b *testing.B) {
	for _, name := range []string{"c432", "c1908", "c7552"} {
		g := benchGraph(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.ArrivalAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Extract measures the full extraction pipeline per
// benchmark — the T column of Table I.
func BenchmarkTable1Extract(b *testing.B) {
	for _, spec := range ssta.ISCAS85Specs {
		g := benchGraph(b, spec.Name)
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.Extract(g, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Stats.EdgesModel), "edges")
			}
		})
	}
}

// BenchmarkFig6Criticality measures the all-pairs criticality engine on
// c7552 (the computation behind Fig. 6).
func BenchmarkFig6Criticality(b *testing.B) {
	g := benchGraph(b, "c7552")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EdgeCriticalities(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CriticalityPruned is the same computation under the
// delta-threshold screen at the paper's default delta — the mode the
// extraction pipeline actually runs. The kept metric (edges at or above
// delta) is bit-identical to the exact engine's; screened counts the
// boundary evaluations the threshold pruned.
func BenchmarkFig6CriticalityPruned(b *testing.B) {
	g := benchGraph(b, "c7552")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.EdgeCriticalitiesOpt(context.Background(), g,
			core.CriticalityOptions{ScreenDelta: core.DefaultDelta})
		if err != nil {
			b.Fatal(err)
		}
		kept := 0
		for _, c := range res.Cm {
			if c >= core.DefaultDelta {
				kept++
			}
		}
		b.ReportMetric(float64(kept), "kept")
		b.ReportMetric(float64(res.ScreenedBoundaries)/float64(i+1), "screened")
	}
}

// BenchmarkIncrementalCriticality measures the single-edit criticality ECO:
// scale one edge's delay, then bring the all-pairs criticality back up to
// date. "scratch" reruns the full screened engine; "incremental" refreshes
// an IncrementalCriticality tracker, which re-derives only the input rows
// the edit can affect (results are bit-identical; tests lock that in). The
// c1908 pair is the CI smoke size; c7552 is the BENCH_5.json headline.
func BenchmarkIncrementalCriticality(b *testing.B) {
	for _, name := range []string{"c1908", "c7552"} {
		base := benchGraph(b, name)
		scales := [2]float64{2, 0.5} // exact inverses: the graph never drifts
		// The affected-input set of an edit is the inputs that reach the
		// edited edge, so a local ECO next to one primary input re-derives
		// a handful of rows where from-scratch re-derives them all. (An
		// output-adjacent edit is the adversarial case: every input
		// reaches it and the refresh degrades to a full recompute.)
		edge := -1
		for e := range base.Edges {
			if base.Edges[e].From == base.Inputs[0] {
				edge = e
				break
			}
		}
		if edge < 0 {
			b.Fatalf("%s: no edge leaving input 0", name)
		}
		opt := core.CriticalityOptions{ScreenDelta: core.DefaultDelta}
		b.Run(name+"/scratch", func(b *testing.B) {
			g := base.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.ScaleEdgeDelay(edge, scales[i%2]); err != nil {
					b.Fatal(err)
				}
				if _, err := core.EdgeCriticalitiesOpt(context.Background(), g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/incremental", func(b *testing.B) {
			g := base.Clone()
			inc, err := g.NewIncremental()
			if err != nil {
				b.Fatal(err)
			}
			ic, err := core.NewIncrementalCriticality(context.Background(), inc, opt)
			if err != nil {
				b.Fatal(err)
			}
			var rows int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.ScaleEdgeDelay(edge, scales[i%2]); err != nil {
					b.Fatal(err)
				}
				if _, err := inc.Update(context.Background()); err != nil {
					b.Fatal(err)
				}
				_, st, err := ic.Refresh(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				rows += st.Inputs
			}
			b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
			b.ReportMetric(float64(len(base.Inputs)), "inputs")
		})
	}
}

// fig7Design builds the quad-c6288 design once (extraction included in
// setup, not measurement).
func fig7Design(b *testing.B) *ssta.Design {
	b.Helper()
	flow := ssta.DefaultFlow()
	g, plan, err := flow.BenchGraph("c6288", 1)
	if err != nil {
		b.Fatal(err)
	}
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		b.Fatal(err)
	}
	mod, err := ssta.NewModule("c6288", model, plan)
	if err != nil {
		b.Fatal(err)
	}
	mod.Orig = g
	d, err := flow.QuadDesign("quad", mod)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkFig7HierAnalysis(b *testing.B) {
	d := fig7Design(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Analyze(ssta.FullCorrelation); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7GlobalOnly(b *testing.B) {
	d := fig7Design(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Analyze(ssta.GlobalOnly); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7MonteCarlo(b *testing.B) {
	d := fig7Design(b)
	flat, _, err := d.Flatten()
	if err != nil {
		b.Fatal(err)
	}
	const perIter = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.MaxDelaySamples(flat, mc.Config{Samples: perIter, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*perIter), "ns/sample")
}

// BenchmarkExtractDelta is the threshold ablation (E4): extraction cost and
// model size across deltas.
func BenchmarkExtractDelta(b *testing.B) {
	g := benchGraph(b, "c880")
	for _, delta := range []float64{0.01, 0.05, 0.20} {
		b.Run(fmt.Sprintf("delta=%.2f", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.Extract(g, core.Options{Delta: delta})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Stats.EdgesModel), "edges")
			}
		})
	}
}

// BenchmarkReplacement measures the eq. 19 variable replacement and design
// stitching in isolation (E5), without propagation.
func BenchmarkReplacement(b *testing.B) {
	d := fig7Design(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Flatten(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeParallel measures the hierarchical analysis engine at
// fixed worker counts on the multi-instance quad design, with the
// geometry/PCA prep cache warm so the measured work is the parallelized
// stitching + propagation. Speedup at 4 workers over 1 is the engine's
// scaling headline.
func BenchmarkAnalyzeParallel(b *testing.B) {
	d := fig7Design(b)
	// Warm the prep cache so every measured iteration is a cache hit.
	if _, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 0}); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzePrepCache quantifies the model-cache win: cold recomputes
// the design partition, PCA and replacement matrices on every analysis
// (the seed behavior), warm reuses the cached prep.
func BenchmarkAnalyzePrepCache(b *testing.B) {
	d := fig7Design(b)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1, DisableCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractCacheHit measures the memoized extraction path: after
// the first call, Flow.Extract is a map lookup regardless of module size.
func BenchmarkExtractCacheHit(b *testing.B) {
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c1908", 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := flow.Extract(g, ssta.ExtractOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Extract(g, ssta.ExtractOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeBatch measures multi-circuit sweep throughput through
// the batch scheduler at different widths.
func BenchmarkAnalyzeBatch(b *testing.B) {
	flow := ssta.DefaultFlow()
	items := []ssta.BatchItem{
		{Bench: "c432", Seed: 1},
		{Bench: "c499", Seed: 1},
		{Bench: "c880", Seed: 1},
		{Bench: "c1355", Seed: 1},
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range flow.AnalyzeBatch(items, ssta.BatchOptions{Workers: workers}) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkIncrementalEdit measures one single-edge ECO cycle — edit, then
// re-analyze — on the largest ISCAS-like benchmark. "full" re-runs a
// complete forward pass per edit (the stateless pre-session behavior);
// "incremental" maintains persistent session state and re-propagates only
// the edited edge's fan-out cone. The recomputed-vertices metric is the
// structural side of the win; the ns/op ratio is the latency side
// (recorded in BENCH_3.json).
func BenchmarkIncrementalEdit(b *testing.B) {
	base := benchGraph(b, "c7552")
	scales := [2]float64{2, 0.5} // exact inverses: the graph never drifts
	// The win is proportional to the edited edge's fan-out cone, so both
	// ends of the spectrum are measured: "local" is a late-stage fix right
	// before the outputs (the common ECO — tiny cone), "midcone" an edit in
	// the thick of the graph (cone ~25% of all vertices on this benchmark).
	for _, tc := range []struct {
		name string
		edge int
	}{
		{"local", len(base.Edges) - 1},
		{"midcone", len(base.Edges) / 2},
	} {
		b.Run(tc.name+"/full", func(b *testing.B) {
			g := base.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.ScaleEdgeDelay(tc.edge, scales[i%2]); err != nil {
					b.Fatal(err)
				}
				if _, err := g.MaxDelay(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/incremental", func(b *testing.B) {
			g := base.Clone()
			inc, err := g.NewIncremental()
			if err != nil {
				b.Fatal(err)
			}
			var recomputed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.ScaleEdgeDelay(tc.edge, scales[i%2]); err != nil {
					b.Fatal(err)
				}
				st, err := inc.Update(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := inc.MaxDelay(); err != nil {
					b.Fatal(err)
				}
				recomputed += st.Forward
			}
			b.ReportMetric(float64(recomputed)/float64(b.N), "reverts/op")
			b.ReportMetric(float64(base.NumVerts), "verts")
		})
	}
}

// BenchmarkSessionSwapModule measures the hierarchical ECO: swapping one
// instance of the quad design between two characterizations of its module
// (extracted at different reduction thresholds — same ports, different
// model) through a design session (per-instance restitch from caches +
// full re-propagation) versus a from-scratch Analyze of an equivalently
// mutated design.
func BenchmarkSessionSwapModule(b *testing.B) {
	flow := ssta.DefaultFlow()
	g, plan, err := flow.BenchGraph("c1355", 1)
	if err != nil {
		b.Fatal(err)
	}
	mkMod := func(delta float64) *ssta.Module {
		model, err := flow.Extract(g, ssta.ExtractOptions{Delta: delta})
		if err != nil {
			b.Fatal(err)
		}
		mod, err := ssta.NewModule("c1355", model, plan)
		if err != nil {
			b.Fatal(err)
		}
		return mod
	}
	mods := [2]*ssta.Module{mkMod(0.05), mkMod(0.08)}
	d, err := flow.QuadDesign("quad", mods[0])
	if err != nil {
		b.Fatal(err)
	}

	b.Run("analyze", func(b *testing.B) {
		mirror := d.CopyStructure()
		for i := 0; i < b.N; i++ {
			mirror.Instances[1].Module = mods[(i+1)%2]
			if _, err := mirror.Analyze(ssta.FullCorrelation); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		sess, err := flow.NewDesignSession(context.Background(), d, ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Apply(context.Background(), []ssta.Edit{
				{Op: ssta.EditSwapModule, Instance: "B", Module: mods[(i+1)%2]},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sweepScenarios builds the 8-scenario MCMM set of the sweep benchmark:
// derates, class scales and sigma multipliers — all swap-free, so every
// scenario shares one stitch.
func sweepScenarios() []ssta.Scenario {
	return []ssta.Scenario{
		{Name: "unit"},
		{Name: "hot", Derate: 1.15},
		{Name: "cold", Derate: 0.92},
		{Name: "aged", CellScale: 1.08},
		{Name: "slow-wires", NetScale: 1.4},
		{Name: "sigma-up", GlobSigma: 1.5, LocSigma: 1.25},
		{Name: "sigma-down", RandSigma: 0.8},
		{Name: "combo", Derate: 1.05, LocSigma: 1.3},
	}
}

// BenchmarkSweep is the MCMM headline: evaluating 8 scenarios against the
// quad design through SweepAnalyze (one partition/PCA/stitch shared by all
// scenarios, one bank-rescale + propagation each) versus 8 independent
// AnalyzeOpt calls (each re-stitching the design). Both run with the
// geometry/PCA prep cache warm, so the measured gap is the stitch work the
// sweep amortizes; speedup is recorded in BENCH_4.json.
func BenchmarkSweep(b *testing.B) {
	flow := ssta.DefaultFlow()
	g, plan, err := flow.BenchGraph("c1355", 1)
	if err != nil {
		b.Fatal(err)
	}
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		b.Fatal(err)
	}
	mod, err := ssta.NewModule("c1355", model, plan)
	if err != nil {
		b.Fatal(err)
	}
	d, err := flow.QuadDesign("sweep-quad", mod)
	if err != nil {
		b.Fatal(err)
	}
	scens := sweepScenarios()
	// Warm the prep cache: both paths measure post-prep steady state.
	if _, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1}); err != nil {
		b.Fatal(err)
	}

	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for range scens {
				if _, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(scens)), "scenarios")
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := ssta.SweepAnalyze(context.Background(), d, ssta.FullCorrelation, scens,
				ssta.SweepOptions{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Completed != len(scens) {
				b.Fatalf("completed %d of %d", rep.Completed, len(scens))
			}
		}
		b.ReportMetric(float64(len(scens)), "scenarios")
	})
}

// BenchmarkAllPairs measures the all-pairs delay-matrix computation used by
// both Table I accuracy columns.
func BenchmarkAllPairs(b *testing.B) {
	g := benchGraph(b, "c1355")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.AllPairsDelays(0); err != nil {
			b.Fatal(err)
		}
	}
}
