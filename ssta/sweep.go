package ssta

import (
	"context"

	"repro/internal/scenario"
)

// Re-exported MCMM sweep types. The scenario package carries the full
// documentation.
type (
	// Scenario describes one named transform of a timing graph or design
	// (derates, per-edge-class scales, sigma multipliers, module swaps).
	Scenario = scenario.Scenario
	// SweepOptions tunes a multi-scenario sweep.
	SweepOptions = scenario.Options
	// SweepReport is the outcome of a sweep: per-scenario results, the
	// cross-scenario worst-case envelope, and the divergence ranking.
	SweepReport = scenario.Report
	// ScenarioResult is the outcome of one scenario.
	ScenarioResult = scenario.Result
	// SweepEnvelope is the cross-scenario worst case.
	SweepEnvelope = scenario.Envelope
	// ScenarioSpec is the JSON wire form of a scenario's rescale knobs.
	ScenarioSpec = scenario.Spec
	// SlackStat summarizes one worst-slack distribution (mean, std, and the
	// low-tail quantile) in a scenario result on sequential graphs.
	SlackStat = scenario.SlackStat
)

// Re-exported scenario constructors.
var (
	// ParseScenariosJSON decodes a JSON array of scenario specs.
	ParseScenariosJSON = scenario.ParseJSON
	// ParseScenariosFlag resolves a -scenarios flag value (inline JSON or
	// @path to a file).
	ParseScenariosFlag = scenario.ParseFlag
	// ScenarioFlagBytes resolves a -scenarios flag value to its raw JSON
	// without decoding, for callers with extended spec types.
	ScenarioFlagBytes = scenario.FlagBytes
)

// SweepAnalyze evaluates every scenario against a hierarchical design with
// shared prep: one partition/PCA/stitch pass (through the design's prep
// cache) serves all swap-free scenarios, each of which only rescales the
// stitched graph's flat delay bank and re-runs the propagation kernel.
// Scenarios with module swaps stitch a private structural copy. Results
// come back per scenario, with failures (including cancellation mid-sweep)
// recorded per result instead of aborting the sweep.
func SweepAnalyze(ctx context.Context, d *Design, mode Mode, scens []Scenario, opt SweepOptions) (*SweepReport, error) {
	return scenario.SweepDesign(ctx, d, mode, scens, opt)
}

// SweepAnalyzeGraph is SweepAnalyze for a flat timing graph: the graph and
// its flat edge-delay bank are the shared prep.
func SweepAnalyzeGraph(ctx context.Context, g *Graph, scens []Scenario, opt SweepOptions) (*SweepReport, error) {
	return scenario.SweepGraph(ctx, g, scens, opt)
}
