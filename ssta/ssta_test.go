package ssta

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultFlowEndToEnd(t *testing.T) {
	flow := DefaultFlow()
	g, plan, err := flow.Graph(C17())
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || g.NumVerts != 11 {
		t.Fatalf("unexpected graph: %d verts", g.NumVerts)
	}
	delay, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if delay.Mean() <= 0 || delay.Std() <= 0 {
		t.Fatalf("degenerate delay %v", delay)
	}
	model, err := flow.Extract(g, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Stats.EdgesModel > model.Stats.EdgesOrig {
		t.Fatal("extraction grew the graph")
	}
}

func TestFlowBenchGraph(t *testing.T) {
	flow := DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 336 {
		t.Fatalf("c432 Eo = %d, want 336", len(g.Edges))
	}
	if _, _, err := flow.BenchGraph("c9999", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFlowLoadBench(t *testing.T) {
	flow := DefaultFlow()
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"
	g, _, err := flow.LoadBench("mini", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Inputs) != 2 || len(g.Outputs) != 1 {
		t.Fatal("IO mismatch")
	}
}

func TestQuadDesignTopology(t *testing.T) {
	flow := DefaultFlow()
	mult, err := ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	g, plan, err := flow.Graph(mult)
	if err != nil {
		t.Fatal(err)
	}
	model, err := flow.Extract(g, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModule("mult4", model, plan)
	if err != nil {
		t.Fatal(err)
	}
	mod.Orig = g
	d, err := flow.QuadDesign("quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Instances) != 4 {
		t.Fatalf("instances = %d", len(d.Instances))
	}
	// 8 outputs cross-connected twice (A->D, B->C).
	if len(d.Nets) != 16 {
		t.Fatalf("nets = %d, want 16", len(d.Nets))
	}
	res, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	// The chained design must be roughly twice as slow as one module.
	single, err := g.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	r := res.Delay.Mean() / single.Mean()
	if r < 1.5 || r > 2.5 {
		t.Fatalf("quad/single delay ratio %g outside [1.5, 2.5]", r)
	}
	if math.IsNaN(res.Delay.Std()) {
		t.Fatal("NaN std")
	}
}

func TestMCThroughFacade(t *testing.T) {
	flow := DefaultFlow()
	g, _, err := flow.Graph(C17())
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MaxDelaySamples(g, MCConfig{Samples: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 500 {
		t.Fatalf("samples = %d", len(samples))
	}
}
