package ssta

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/store"
	"repro/internal/timing"
)

// FuzzSnapshotDecode drives arbitrary bytes through the session-snapshot
// decoder: it must never panic, and anything it accepts must round-trip
// bit-identically through encode/decode. Accepted graphs additionally go
// through FromSnapshot, which must validate without panicking, and a
// successfully rebuilt graph must re-snapshot to the same structure.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a real session snapshot, assorted corruptions of it, and
	// bare envelope edge cases.
	flow := DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		f.Fatal(err)
	}
	s, err := flow.NewGraphSession(context.Background(), g)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), []Edit{
		{Op: EditScaleDelay, Edge: 1, Scale: 1.2},
		{Op: EditRemoveEdge, Edge: 0},
	}); err != nil {
		f.Fatal(err)
	}
	valid, err := s.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(store.Seal(SessionSnapshotKind, SessionSnapshotVersion, []byte("{}")))
	f.Add(store.Seal(SessionSnapshotKind, SessionSnapshotVersion,
		[]byte(`{"graph":{"globals":1,"components":1,"num_verts":2,"edges":[{"from":0,"to":1,"nominal":3,"glob":[0.1],"loc":[0.2],"rand":0.3}]}}`)))
	f.Add(store.Seal(SessionSnapshotKind, SessionSnapshotVersion,
		[]byte(`{"graph":{"num_verts":-5,"edges":[{"from":9,"to":9}]}}`)))
	f.Add(store.Seal("wrong-kind", 99, []byte("{}")))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSessionSnapshot(data)
		if err != nil {
			return // rejected; the only requirement is no panic
		}
		// Accepted snapshots round-trip bit-identically.
		enc, err := snap.Encode()
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		snap2, err := DecodeSessionSnapshot(enc)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(snap, snap2) {
			t.Fatal("snapshot round-trip not identical")
		}
		enc2, err := snap2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("snapshot re-encode not bit-identical")
		}
		// Graph reconstruction validates instead of panicking; a graph it
		// accepts must re-snapshot to an equivalent structure.
		if snap.Graph != nil {
			rg, err := timing.FromSnapshot(snap.Graph)
			if err != nil {
				return
			}
			rs := rg.Snapshot()
			if rs.NumVerts != snap.Graph.NumVerts || len(rs.Edges) != len(snap.Graph.Edges) {
				t.Fatalf("rebuilt graph shape %d/%d differs from snapshot %d/%d",
					rs.NumVerts, len(rs.Edges), snap.Graph.NumVerts, len(snap.Graph.Edges))
			}
		}
	})
}
