package ssta

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/store"
)

// persistFlow builds a small flow + flat session with some edit history.
func persistFlow(t *testing.T) (*Flow, *Session) {
	t.Helper()
	f := DefaultFlow()
	g, _, err := f.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s, err := f.NewGraphSession(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(ctx, []Edit{
		{Op: EditScaleDelay, Edge: 3, Scale: 1.25},
		{Op: EditSetNominal, Edge: 10, Value: 42.5},
		{Op: EditRemoveEdge, Edge: 20},
		{Op: EditAddEdge, From: s.Graph().Edges[5].From, To: s.Graph().Edges[30].To, Value: 17.0},
	}); err != nil {
		t.Fatal(err)
	}
	return f, s
}

func restoreTol(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
}

func TestSessionSnapshotRoundTripFlat(t *testing.T) {
	f, s := persistFlow(t)
	ctx := context.Background()

	snap := s.Snapshot()
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSessionSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := f.RestoreSession(ctx, decoded)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}

	d0, d1 := s.Delay(), rs.Delay()
	if !restoreTol(d0.Mean(), d1.Mean()) || !restoreTol(d0.Std(), d1.Std()) {
		t.Fatalf("restored delay %.12g/%.12g, want %.12g/%.12g", d1.Mean(), d1.Std(), d0.Mean(), d0.Std())
	}

	// The restored session answers the same edit batch identically.
	edits := []Edit{
		{Op: EditScaleDelay, Edge: 7, Scale: 0.8},
		{Op: EditSetNominal, Edge: 15, Value: 33.0},
	}
	r0, err := s.Apply(ctx, edits)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := rs.Apply(ctx, edits)
	if err != nil {
		t.Fatal(err)
	}
	if !restoreTol(r0.Delay.Mean(), r1.Delay.Mean()) || !restoreTol(r0.Delay.Std(), r1.Delay.Std()) {
		t.Fatalf("post-edit delay diverged: %.12g vs %.12g", r0.Delay.Mean(), r1.Delay.Mean())
	}
}

func TestSessionSnapshotRoundTripSweepAndCriticality(t *testing.T) {
	f, s := persistFlow(t)
	ctx := context.Background()

	scens := []Scenario{
		{Name: "slow", Derate: 1.1},
		{Name: "cells-fast", CellScale: 0.9, EdgeScales: map[int]float64{4: 1.3}},
		{Name: "sigma-up", GlobSigma: 1.2, LocSigma: 1.1, RandSigma: 0.9},
	}
	if _, err := s.SetSweep(ctx, scens, SweepOptions{Workers: 2, TopK: 2, Quantile: 0.99}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableCriticality(ctx, CriticalityOptions{Workers: 2, ScreenDelta: 0.01}); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	if snap.Sweep == nil || len(snap.Sweep.Scenarios) != 3 || snap.Crit == nil {
		t.Fatalf("snapshot missing sweep/crit state: %+v", snap)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSessionSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := f.RestoreSession(ctx, decoded)
	if err != nil {
		t.Fatal(err)
	}

	sw0, sw1 := s.Sweep(), rs.Sweep()
	if sw1 == nil || len(sw1.Results) != len(sw0.Results) {
		t.Fatalf("restored sweep missing: %+v", sw1)
	}
	for i := range sw0.Results {
		a, b := sw0.Results[i], sw1.Results[i]
		if a.Name != b.Name || !restoreTol(a.Mean, b.Mean) || !restoreTol(a.Quantile, b.Quantile) {
			t.Fatalf("scenario %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if rs.Criticality() == nil {
		t.Fatal("restored session lost criticality tracking")
	}

	// One more edit batch: sweeps and criticality refresh identically.
	edits := []Edit{{Op: EditScaleDelay, Edge: 2, Scale: 1.05}}
	r0, err := s.Apply(ctx, edits)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := rs.Apply(ctx, edits)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sweep == nil || r1.Criticality == nil {
		t.Fatal("restored session edit report missing sweep/criticality")
	}
	for i := range r0.Sweep.Results {
		if !restoreTol(r0.Sweep.Results[i].Mean, r1.Sweep.Results[i].Mean) {
			t.Fatalf("post-edit sweep scenario %d diverged", i)
		}
	}
}

func TestSessionSnapshotHierRestoresFlat(t *testing.T) {
	f := DefaultFlow()
	ctx := context.Background()
	d, _, _ := quadFixture(t, f, "c432")
	s, err := f.NewDesignSession(ctx, d, FullCorrelation, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if !snap.Hier {
		t.Fatal("snapshot not marked hierarchical")
	}
	rs, err := f.RestoreSession(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Hierarchical() {
		t.Fatal("restored session claims to be hierarchical")
	}
	if !restoreTol(s.Delay().Mean(), rs.Delay().Mean()) {
		t.Fatalf("hier restore delay %.12g, want %.12g", rs.Delay().Mean(), s.Delay().Mean())
	}
	// Edge edits work on the restored (now flat) session; design edits fail.
	if _, err := rs.Apply(ctx, []Edit{{Op: EditScaleDelay, Edge: 0, Scale: 1.1}}); err != nil {
		t.Fatalf("edge edit on restored session: %v", err)
	}
	if _, err := rs.Apply(ctx, []Edit{{Op: EditSetNetDelay, Net: 0, Value: 5}}); err == nil {
		t.Fatal("net edit accepted on restored flat session")
	}
}

func TestDecodeSessionSnapshotRejectsCorruptAndSkew(t *testing.T) {
	_, s := persistFlow(t)
	data, err := s.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Truncation and bit flips are corrupt.
	if _, err := DecodeSessionSnapshot(data[:len(data)-10]); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("truncated: %v, want ErrCorrupt", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x40
	if _, err := DecodeSessionSnapshot(flipped); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("bit flip: %v, want ErrCorrupt", err)
	}
	if _, err := DecodeSessionSnapshot([]byte("garbage")); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("garbage: %v, want ErrCorrupt", err)
	}

	// A valid envelope of the wrong kind or version is skew, not corruption.
	wrongKind := store.Seal("something-else", SessionSnapshotVersion, []byte("{}"))
	if _, err := DecodeSessionSnapshot(wrongKind); !errors.Is(err, store.ErrVersion) {
		t.Fatalf("wrong kind: %v, want ErrVersion", err)
	}
	wrongVer := store.Seal(SessionSnapshotKind, SessionSnapshotVersion+1, []byte("{}"))
	if _, err := DecodeSessionSnapshot(wrongVer); !errors.Is(err, store.ErrVersion) {
		t.Fatalf("wrong version: %v, want ErrVersion", err)
	}

	// A checksummed envelope around garbage JSON is corrupt.
	badJSON := store.Seal(SessionSnapshotKind, SessionSnapshotVersion, []byte("{not json"))
	if _, err := DecodeSessionSnapshot(badJSON); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("bad payload: %v, want ErrCorrupt", err)
	}
}

func TestRestoreSessionIntegrityCrossCheck(t *testing.T) {
	f, s := persistFlow(t)
	snap := s.Snapshot()
	snap.MeanPS *= 1.5 // a snapshot that decodes cleanly but claims a different answer
	if _, err := f.RestoreSession(context.Background(), snap); err == nil {
		t.Fatal("RestoreSession accepted a snapshot failing the delay cross-check")
	}
}

func TestModelSnapshotRoundTrip(t *testing.T) {
	f := DefaultFlow()
	g, _, err := f.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Extract(g, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	rm, err := DecodeModelSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Graph.NumVerts != m.Graph.NumVerts || len(rm.Graph.Edges) != len(m.Graph.Edges) {
		t.Fatalf("model shape mismatch: %d/%d verts, %d/%d edges",
			rm.Graph.NumVerts, m.Graph.NumVerts, len(rm.Graph.Edges), len(m.Graph.Edges))
	}
	// Same bytes on re-encode (modulo the envelope being deterministic).
	data2, err := rm.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("model snapshot re-encode differs")
	}
	if _, err := DecodeModelSnapshot([]byte("junk")); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("junk model: %v, want ErrCorrupt", err)
	}
}
