package ssta

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/scenario"
	"repro/internal/timing"
)

// EditOp enumerates the supported session edits.
type EditOp int

const (
	// EditScaleDelay multiplies every component of an edge's delay form by
	// Scale (> 0) — a resized driver or re-bought cell.
	EditScaleDelay EditOp = iota
	// EditSetDelay replaces an edge's delay form with Delay.
	EditSetDelay
	// EditSetNominal replaces only the mean of an edge's delay with Value
	// (ps), keeping its sensitivities.
	EditSetNominal
	// EditAddEdge adds a new edge From -> To. Delay supplies the form; a nil
	// Delay means a deterministic delay of Value ps.
	EditAddEdge
	// EditRemoveEdge tombstones edge Edge.
	EditRemoveEdge
	// EditRetargetIO redeclares the graph's inputs/outputs from the
	// Inputs/Outputs/InNames/OutNames fields.
	EditRetargetIO
	// EditSetNetDelay sets the wire delay of design net Net to Value ps
	// (hierarchical sessions only).
	EditSetNetDelay
	// EditSwapModule replaces instance Instance's module with Module
	// (hierarchical sessions only) — the paper's ECO case.
	EditSwapModule
)

// String names the op for error messages and logs.
func (op EditOp) String() string {
	switch op {
	case EditScaleDelay:
		return "scale_delay"
	case EditSetDelay:
		return "set_delay"
	case EditSetNominal:
		return "set_nominal"
	case EditAddEdge:
		return "add_edge"
	case EditRemoveEdge:
		return "remove_edge"
	case EditRetargetIO:
		return "retarget_io"
	case EditSetNetDelay:
		return "set_net_delay"
	case EditSwapModule:
		return "swap_module"
	default:
		return fmt.Sprintf("EditOp(%d)", int(op))
	}
}

// Edit is one element of a session edit batch. Which fields apply depends
// on Op (see the op constants).
type Edit struct {
	Op       EditOp
	Edge     int
	Scale    float64
	Value    float64
	Delay    *Form
	From, To int
	Net      int
	Instance string
	Module   *Module

	Inputs, Outputs   []int
	InNames, OutNames []string
}

// EditReport is the outcome of one applied edit batch.
type EditReport struct {
	// Delay is the post-edit statistical circuit delay.
	Delay *Form
	// Applied counts the edits applied (== len(edits) on success).
	Applied int
	// Recomputed is the number of vertices whose arrival was re-propagated;
	// TotalVerts the graph size — their ratio is the incremental win.
	Recomputed int
	TotalVerts int
	// FullReprop marks a full re-propagation (module swap, metadata
	// overflow or recovery) instead of a dirty-cone sweep.
	FullReprop bool
	// Sweep is the re-evaluated active MCMM sweep, when one is installed
	// (see Session.SetSweep); nil otherwise.
	Sweep *SweepReport
	// Criticality is the refreshed all-pairs edge-criticality snapshot when
	// criticality tracking is enabled (see Session.EnableCriticality); nil
	// otherwise.
	Criticality *CriticalityResult
	// CritStats reports what the criticality refresh recomputed (zero when
	// tracking is off).
	CritStats CriticalityRefreshStats
	Elapsed   time.Duration
}

// ReanalysisError marks a failure of the post-edit re-analysis itself —
// restitch recovery, an incremental update, or a full rebuild — as opposed
// to an edit that failed validation. Callers (the serving layer) use it to
// tell server-side faults apart from bad client input; it unwraps, so
// errors.Is still detects cancellation underneath.
type ReanalysisError struct{ Err error }

func (e *ReanalysisError) Error() string { return "ssta: re-analysis: " + e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *ReanalysisError) Unwrap() error { return e.Err }

// Session is a stateful analysis handle: one full analysis at creation,
// incremental cost per edit batch thereafter. A session owns a private
// clone of its graph (and, for hierarchical sessions, of its design), so
// edits never leak into caches or other sessions. All methods are safe for
// concurrent use; edits are serialized internally.
type Session struct {
	mu    sync.Mutex
	graph *Graph
	inc   *timing.Incremental
	hs    *hier.Session
	delay *Form
	sweep *sessionSweep

	// restoredFlat marks a session rebuilt from a hierarchical snapshot:
	// the stitched top graph and sweep are intact, but the design
	// structure is gone, so design-level edits (set_net_delay,
	// swap_module) need a session recreate.
	restoredFlat bool

	// Criticality tracking (see EnableCriticality). crit is nil while
	// tracking is off, and also after a failed refresh — critOn then forces
	// a from-scratch rebuild at the next refresh.
	crit    *core.IncrementalCriticality
	critOpt CriticalityOptions
	critOn  bool
}

// sessionSweep is the per-session MCMM sweep state: one transformed clone
// of the session graph per scenario, each with its own persistent
// incremental propagation state. Every edit applied to the session graph
// is mirrored into each scenario clone (the transform is linear per
// component, so mirroring commutes with editing), and the post-edit
// re-analysis re-propagates only the dirty cones per scenario.
type sessionSweep struct {
	scens  []Scenario
	opt    SweepOptions
	graphs []*Graph
	incs   []*timing.Incremental
	report *SweepReport
	// stale forces a full rebuild at the next refresh (set after a module
	// swap restitch, a mirror failure, or an interrupted sweep update).
	stale bool
}

// NewGraphSession starts a session over a private clone of the given flat
// timing graph, paying one full propagation.
func (f *Flow) NewGraphSession(ctx context.Context, g *Graph) (*Session, error) {
	cl := g.Clone()
	inc, err := cl.NewIncrementalCtx(ctx)
	if err != nil {
		return nil, err
	}
	delay, err := inc.MaxDelay()
	if err != nil {
		return nil, err
	}
	return &Session{graph: cl, inc: inc, delay: delay}, nil
}

// NewDesignSession starts a session over a private structural copy of the
// given hierarchical design: the per-instance prep is computed and the top
// graph stitched and fully propagated once; subsequent edits (net delays,
// module swaps) pay incremental cost.
func (f *Flow) NewDesignSession(ctx context.Context, d *Design, mode Mode, opt AnalyzeOptions) (*Session, error) {
	hs, err := hier.NewSession(ctx, d.CopyStructure(), mode, opt)
	if err != nil {
		return nil, err
	}
	g, err := hs.Graph()
	if err != nil {
		return nil, err
	}
	inc, err := g.NewIncrementalCtx(ctx)
	if err != nil {
		return nil, err
	}
	delay, err := inc.MaxDelay()
	if err != nil {
		return nil, err
	}
	return &Session{graph: g, inc: inc, hs: hs, delay: delay}, nil
}

// Hierarchical reports whether the session wraps a hierarchical design.
func (s *Session) Hierarchical() bool { return s.hs != nil }

// Delay returns the current statistical circuit delay.
func (s *Session) Delay() *Form {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delay
}

// SessionInfo is a consistent snapshot of session state.
type SessionInfo struct {
	Delay        *Form
	Verts, Edges int
	Hier         bool
	// RestoredFlat marks a session that was checkpointed as hierarchical
	// and restored flat: delays and sweep state are exact, but
	// design-structure edits are no longer available.
	RestoredFlat bool
}

// Info snapshots the session.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		Delay: s.delay, Verts: s.graph.NumVerts, Edges: len(s.graph.Edges),
		Hier: s.hs != nil, RestoredFlat: s.restoredFlat,
	}
}

// RestoredFlat reports whether this session came from a hierarchical
// snapshot and therefore lost its design structure on restore.
func (s *Session) RestoredFlat() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restoredFlat
}

// Graph returns the live graph (the stitched top for hierarchical
// sessions). Treat it as read-only; all mutation goes through Apply.
func (s *Session) Graph() *Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graph
}

// Design returns the session-owned design, or nil for flat sessions.
func (s *Session) Design() *Design {
	if s.hs == nil {
		return nil
	}
	return s.hs.Design()
}

// Apply applies an edit batch in order and re-analyzes incrementally:
// arrival times are re-propagated only through the union of the edits'
// dirty cones (a module swap restitches from the per-instance caches and
// re-propagates fully). On error, edits already applied stay applied and
// the session state is re-synced before returning, so the session remains
// usable; the error names the failing edit, and the report is returned
// alongside it with Applied set, so callers can tell a partially applied
// batch from nothing-happened — blindly resending the same batch would
// double-apply its valid prefix.
func (s *Session) Apply(ctx context.Context, edits []Edit) (*EditReport, error) {
	return s.ApplyObserved(ctx, edits, nil)
}

// ApplyObserved is Apply with a per-scenario completion observer for the
// active sweep: when a sweep is installed, obs is invoked once per scenario
// as its refreshed result becomes final — including error results when the
// refresh is cut off mid-sweep — so streaming callers can deliver partial
// sweep output instead of waiting for the whole report. obs runs with the
// session mutex held and may be called from sweep worker goroutines (during
// a full rebuild); it must not call back into the session. It composes with
// the sweep's own SweepOptions.OnScenarioDone hook, which fires first.
func (s *Session) ApplyObserved(ctx context.Context, edits []Edit, obs func(i int, r *ScenarioResult)) (*EditReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	restitched := false
	if s.hs != nil && s.hs.Stale() {
		// A previously interrupted swap left the top graph uncommitted;
		// recover before touching anything else.
		if err := s.hs.Restitch(ctx); err != nil {
			return nil, &ReanalysisError{Err: err}
		}
		restitched = true
	}
	var applyErr error
	applied := 0
	for k := range edits {
		if err := s.applyOne(ctx, &edits[k], &restitched); err != nil {
			applyErr = fmt.Errorf("ssta: edit %d (%s): %w", k, edits[k].Op, err)
			break
		}
		// Keep the scenario clones of an active sweep in lockstep with the
		// session graph; a mirror failure degrades to a full sweep rebuild
		// at refresh, never to divergent state.
		s.mirrorEdit(&edits[k])
		applied++
	}
	rep, err := s.refresh(ctx, restitched, obs)
	rep.Applied = applied
	rep.Elapsed = time.Since(start)
	if err != nil {
		// A failed re-analysis is a fault in its own right even when an edit
		// already failed validation: join the two so the classification
		// (cancellation, server fault) survives alongside the edit error.
		err = &ReanalysisError{Err: err}
		if applyErr != nil {
			err = errors.Join(applyErr, err)
		}
		return rep, err
	}
	if applyErr != nil {
		return rep, applyErr
	}
	return rep, nil
}

func (s *Session) applyOne(ctx context.Context, e *Edit, restitched *bool) error {
	// Edge-level ops are the flat-session vocabulary. On a hierarchical
	// session the top graph is derived state — rebuilt from the design and
	// the per-instance caches on every restitch — so ad-hoc edge edits
	// against it would silently vanish at the next module swap. Reject them
	// up front; hierarchical edits go through the design (set_net_delay,
	// swap_module).
	flat := func() error {
		if s.hs != nil {
			return fmt.Errorf("edge edits apply to flat sessions only; hierarchical sessions take set_net_delay and swap_module")
		}
		return nil
	}
	switch e.Op {
	case EditScaleDelay:
		if err := flat(); err != nil {
			return err
		}
		return s.graph.ScaleEdgeDelay(e.Edge, e.Scale)
	case EditSetDelay:
		if err := flat(); err != nil {
			return err
		}
		return s.graph.SetEdgeDelay(e.Edge, e.Delay)
	case EditSetNominal:
		if err := flat(); err != nil {
			return err
		}
		return s.graph.SetEdgeNominal(e.Edge, e.Value)
	case EditAddEdge:
		if err := flat(); err != nil {
			return err
		}
		delay := e.Delay
		if delay == nil {
			delay = s.graph.Space.Const(e.Value)
		}
		_, err := s.graph.AddEdgeLive(e.From, e.To, delay, nil, 0)
		return err
	case EditRemoveEdge:
		if err := flat(); err != nil {
			return err
		}
		return s.graph.RemoveEdge(e.Edge)
	case EditRetargetIO:
		if err := flat(); err != nil {
			return err
		}
		return s.graph.RetargetIO(e.Inputs, e.Outputs, e.InNames, e.OutNames)
	case EditSetNetDelay:
		if s.hs == nil {
			return fmt.Errorf("net edits require a hierarchical session")
		}
		if *restitched {
			// The restitched top graph already carries the design's nets;
			// apply against it after re-fetching below.
			if err := s.syncTop(); err != nil {
				return err
			}
		}
		return s.hs.SetNetDelay(e.Net, e.Value)
	case EditSwapModule:
		if s.hs == nil {
			return fmt.Errorf("module swaps require a hierarchical session")
		}
		if err := s.hs.SwapModule(ctx, e.Instance, e.Module); err != nil {
			return err
		}
		*restitched = true
		return s.syncTop()
	default:
		return fmt.Errorf("unknown edit op %d", int(e.Op))
	}
}

// syncTop re-fetches the hier session's (possibly replaced) top graph.
func (s *Session) syncTop() error {
	g, err := s.hs.Graph()
	if err != nil {
		return err
	}
	s.graph = g
	return nil
}

// refresh re-syncs the incremental state with the (possibly restitched)
// graph and folds the new delay. obs, when non-nil, observes per-scenario
// sweep results as they finalize (see ApplyObserved).
func (s *Session) refresh(ctx context.Context, restitched bool, obs func(int, *ScenarioResult)) (*EditReport, error) {
	rep := &EditReport{TotalVerts: s.graph.NumVerts}
	if restitched {
		if err := s.syncTop(); err != nil {
			return rep, err
		}
		rep.TotalVerts = s.graph.NumVerts
	}
	// Rebuild on graph identity, not the restitched flag alone: a previous
	// refresh may have swapped s.graph in and then failed (a client timeout
	// firing during the full re-propagation is the likely cause) before
	// s.inc was rebuilt, leaving it bound to the discarded graph.
	graphChanged := restitched || s.inc == nil || s.inc.Graph() != s.graph
	if graphChanged {
		// Drop the stale state before the fallible rebuild so a failure here
		// can never leave the session silently serving pre-swap delays.
		s.inc = nil
		inc, err := s.graph.NewIncrementalCtx(ctx)
		if err != nil {
			return rep, err
		}
		s.inc = inc
		rep.Recomputed = s.graph.NumVerts
		rep.FullReprop = true
	} else {
		st, err := s.inc.Update(ctx)
		if err != nil {
			return rep, err
		}
		rep.Recomputed = st.Forward
		rep.FullReprop = st.Full
	}
	delay, err := s.inc.MaxDelay()
	if err != nil {
		return rep, err
	}
	s.delay = delay
	rep.Delay = delay
	// Re-evaluate the active sweep last: the main state above is already
	// consistent, so a sweep failure (cancellation mid-update) surfaces as
	// a re-analysis error while the session itself stays usable — the sweep
	// is marked stale and fully rebuilt on the next refresh.
	if s.sweep != nil {
		if err := s.refreshSweep(ctx, graphChanged, obs); err != nil {
			return rep, err
		}
		rep.Sweep = s.sweep.report
	}
	// Criticality tracking rides behind the incremental update: the seed
	// journal now covers every edit of this batch. A replaced graph (or a
	// previously failed refresh) rebuilds the tracker from scratch against
	// the fresh incremental state; otherwise only the affected input rows
	// are re-derived. A failure degrades the same way the sweep does: the
	// session stays usable, the tracker rebuilds on the next refresh.
	if s.critOn {
		if graphChanged || s.crit == nil {
			s.crit = nil
			ic, err := core.NewIncrementalCriticality(ctx, s.inc, s.critOpt)
			if err != nil {
				return rep, err
			}
			s.crit = ic
			rep.Criticality = ic.Result()
			rep.CritStats = CriticalityRefreshStats{
				Inputs: len(s.graph.Inputs), Outputs: len(s.graph.Outputs), Full: true,
			}
		} else {
			res, cst, err := s.crit.Refresh(ctx)
			if err != nil {
				s.crit = nil
				return rep, err
			}
			rep.Criticality = res
			rep.CritStats = cst
		}
	}
	return rep, nil
}

// EnableCriticality turns on per-edit criticality tracking: one full
// all-pairs criticality run now, then every Apply refreshes only the input
// rows its edits can affect and reports the snapshot in
// EditReport.Criticality. Hierarchical sessions are supported, but a module
// swap replaces the top graph wholesale and falls back to a full recompute.
// The initial result is returned.
func (s *Session) EnableCriticality(ctx context.Context, opt CriticalityOptions) (*CriticalityResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hs != nil && s.hs.Stale() {
		return nil, errors.New("ssta: session graph is stale after an interrupted swap; apply an edit batch to recover first")
	}
	if s.inc == nil || s.inc.Graph() != s.graph {
		return nil, errors.New("ssta: session has no consistent incremental state; apply an edit batch to recover first")
	}
	ic, err := core.NewIncrementalCriticality(ctx, s.inc, opt)
	if err != nil {
		return nil, err
	}
	s.crit, s.critOpt, s.critOn = ic, opt, true
	return ic.Result(), nil
}

// DisableCriticality drops criticality tracking and its retained rows.
func (s *Session) DisableCriticality() {
	s.mu.Lock()
	s.crit, s.critOn = nil, false
	s.mu.Unlock()
}

// Criticality returns the tracked criticality snapshot as of the last edit
// batch (or EnableCriticality), or nil when tracking is off or the last
// refresh failed.
func (s *Session) Criticality() *CriticalityResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crit == nil {
		return nil
	}
	return s.crit.Result()
}

// mirrorEdit replays one successfully applied session edit into every
// scenario clone of the active sweep. The scenario transform is linear per
// canonical-form component, so mirroring an edit and transforming the
// edited graph commute; the clone edge delays are recomputed from the main
// graph's post-edit forms so the invariant "clone == TransformGraph(main)"
// holds after every edit. Any mirror failure (or a module swap, which
// replaces the graph wholesale) marks the sweep stale for a full rebuild.
func (s *Session) mirrorEdit(e *Edit) {
	sw := s.sweep
	if sw == nil || sw.stale {
		return
	}
	if e.Op == EditSwapModule {
		sw.stale = true
		return
	}
	for i := range sw.graphs {
		sc := &sw.scens[i]
		g := sw.graphs[i]
		var err error
		switch e.Op {
		case EditScaleDelay:
			err = g.ScaleEdgeDelay(e.Edge, e.Scale)
		case EditSetDelay, EditSetNominal:
			err = g.SetEdgeDelay(e.Edge, sc.TransformEdge(g.Space, e.Edge, &s.graph.Edges[e.Edge]))
		case EditAddEdge:
			me := &s.graph.Edges[len(s.graph.Edges)-1]
			_, err = g.AddEdgeLive(me.From, me.To, sc.TransformEdge(g.Space, len(g.Edges), me), nil, 0)
		case EditRemoveEdge:
			err = g.RemoveEdge(e.Edge)
		case EditRetargetIO:
			err = g.RetargetIO(e.Inputs, e.Outputs, e.InNames, e.OutNames)
		case EditSetNetDelay:
			var ei int
			if ei, err = s.hs.NetEdge(e.Net); err == nil {
				err = g.SetEdgeDelay(ei, sc.TransformEdge(g.Space, ei, &s.graph.Edges[ei]))
			}
		default:
			err = fmt.Errorf("unmirrorable op %v", e.Op)
		}
		if err != nil {
			sw.stale = true
			return
		}
	}
}

// sweepObserver composes the sweep's own OnScenarioDone hook with a
// per-call observer into one completion callback (nil when both are nil).
// The installed hook fires first so its accounting is never starved by a
// slow streaming observer.
func sweepObserver(opt SweepOptions, obs func(int, *ScenarioResult)) func(int, *ScenarioResult) {
	hook := opt.OnScenarioDone
	if hook == nil {
		return obs
	}
	if obs == nil {
		return hook
	}
	return func(i int, r *ScenarioResult) { hook(i, r); obs(i, r) }
}

// refreshSweep re-evaluates the active sweep: a dirty-cone incremental
// update per scenario, or a full rebuild when the session graph was
// replaced (restitch) or the sweep state went stale. Every scenario gets
// one definite outcome even when the refresh is interrupted mid-sweep — a
// failed incremental update lands in that scenario's Err and the remaining
// scenarios are still attempted (once the context is dead they fail fast),
// so the observer sees exactly where the sweep was cut off. Any update
// failure marks the sweep stale and surfaces as the returned error; the
// retained report is then the last consistent one.
func (s *Session) refreshSweep(ctx context.Context, rebuild bool, obs func(int, *ScenarioResult)) error {
	sw := s.sweep
	if rebuild || sw.stale {
		st, err := s.buildSweepState(ctx, sw.scens, sw.opt, obs)
		if err != nil {
			sw.stale = true
			return err
		}
		s.sweep = st
		return nil
	}
	fire := sweepObserver(sw.opt, obs)
	q := sw.opt.Quantile
	if q <= 0 {
		q = 0.99865
	}
	results := make([]ScenarioResult, len(sw.scens))
	var firstErr error
	for i := range sw.scens {
		r := &results[i]
		r.Name, r.Shared = sw.scens[i].Name, true
		t0 := time.Now()
		if _, err := sw.incs[i].Update(ctx); err != nil {
			r.Err = err
			if firstErr == nil {
				firstErr = err
			}
		} else if delay, err := sw.incs[i].MaxDelay(); err != nil {
			r.Err = err
		} else {
			r.Delay = delay
			r.Mean, r.Std, r.Quantile = delay.Mean(), delay.Std(), delay.Quantile(q)
			fillSeqSlack(r, sw.graphs[i], &sw.scens[i], q)
		}
		r.Elapsed = time.Since(t0)
		if fire != nil {
			fire(i, r)
		}
	}
	if firstErr != nil {
		sw.stale = true
		return firstErr
	}
	sw.report = scenario.NewReport(results, sw.opt)
	s.stampSweepTop(sw.report)
	return nil
}

// fillSeqSlack attaches worst setup/hold slack statistics to a session
// scenario result when its graph is sequential. The scenario's transform is
// already materialized in the per-scenario graph clone, so the slack pass
// reads the graph's own delays under the scenario's clock.
func fillSeqSlack(r *ScenarioResult, g *Graph, sc *Scenario, q float64) {
	if g == nil || !g.Sequential() {
		return
	}
	setup, hold, err := scenario.SeqSlackStats(g, nil, sc.ClockSpec(), q)
	if err != nil {
		r.Err = err
		return
	}
	r.SetupSlack, r.HoldSlack = setup, hold
}

// stampSweepTop records the session graph's size on the sweep report, so
// session sweep responses carry the same scalar graph stats as one-shot
// sweeps (the wire layer reads the scalars, never the graph).
func (s *Session) stampSweepTop(rep *SweepReport) {
	if rep == nil || s.graph == nil {
		return
	}
	rep.Top = s.graph
	rep.TopVerts, rep.TopEdges = s.graph.NumVerts, len(s.graph.Edges)
}

// buildSweepState pays the full per-scenario cost — one transformed clone
// of the session graph and one full propagation per scenario — fanned out
// over opt.Workers like the one-shot sweep engine (each scenario writes
// only its own slots; the session mutex is already held). The observer is
// fired once per scenario with its final result, including error results
// when the build is interrupted: scenarios the pool never started are
// attributed the context error before the build error is returned, so a
// streaming caller still receives one event per scenario.
func (s *Session) buildSweepState(ctx context.Context, scens []Scenario, opt SweepOptions, obs func(int, *ScenarioResult)) (*sessionSweep, error) {
	sw := &sessionSweep{
		scens:  scens,
		opt:    opt,
		graphs: make([]*Graph, len(scens)),
		incs:   make([]*timing.Incremental, len(scens)),
	}
	fire := sweepObserver(opt, obs)
	q := opt.Quantile
	if q <= 0 {
		q = 0.99865
	}
	results := make([]ScenarioResult, len(scens))
	err := timing.ParallelForCtx(ctx, len(scens), opt.Workers, func(ctx context.Context, i int) error {
		t0 := time.Now()
		r := &results[i]
		r.Name, r.Shared = scens[i].Name, true
		g := scens[i].TransformGraph(s.graph)
		inc, err := g.NewIncrementalCtx(ctx)
		if err != nil {
			r.Err = err
			r.Elapsed = time.Since(t0)
			if fire != nil {
				fire(i, r)
			}
			return err
		}
		sw.graphs[i], sw.incs[i] = g, inc
		if delay, err := inc.MaxDelay(); err != nil {
			r.Err = err
		} else {
			r.Delay = delay
			r.Mean, r.Std, r.Quantile = delay.Mean(), delay.Std(), delay.Quantile(q)
			fillSeqSlack(r, g, &scens[i], q)
		}
		r.Elapsed = time.Since(t0)
		if fire != nil {
			fire(i, r)
		}
		return nil
	})
	if err != nil {
		if fire != nil {
			for i := range results {
				r := &results[i]
				if r.Delay == nil && r.Err == nil {
					r.Name, r.Shared = scens[i].Name, true
					if cerr := ctx.Err(); cerr != nil {
						r.Err = cerr
					} else {
						r.Err = err
					}
					fire(i, r)
				}
			}
		}
		return nil, err
	}
	sw.report = scenario.NewReport(results, opt)
	s.stampSweepTop(sw.report)
	return sw, nil
}

// SetSweep installs (or replaces) the session's active MCMM sweep: every
// scenario gets a transformed clone of the session graph with persistent
// incremental state, paid for with one full propagation per scenario here;
// every subsequent Apply re-evaluates all scenarios incrementally
// (dirty-cone re-propagation per scenario) and reports the refreshed sweep
// in EditReport.Sweep. Module-swap scenarios are rejected — sessions
// express swaps as edits, which trigger a full sweep rebuild anyway.
func (s *Session) SetSweep(ctx context.Context, scens []Scenario, opt SweepOptions) (*SweepReport, error) {
	norm, err := scenario.Normalize(scens, false)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hs != nil && s.hs.Stale() {
		return nil, errors.New("ssta: session graph is stale after an interrupted swap; apply an edit batch to recover first")
	}
	st, err := s.buildSweepState(ctx, norm, opt, nil)
	if err != nil {
		return nil, err
	}
	s.sweep = st
	return st.report, nil
}

// Sweep returns the active sweep's report as of the last edit batch (or
// SetSweep), or nil when no sweep is installed.
func (s *Session) Sweep() *SweepReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sweep == nil {
		return nil
	}
	return s.sweep.report
}

// ClearSweep drops the active sweep and its per-scenario state.
func (s *Session) ClearSweep() {
	s.mu.Lock()
	s.sweep = nil
	s.mu.Unlock()
}
