package ssta

import (
	"context"
	"strings"
	"testing"

	"repro/internal/mc"
)

// clockedSmokeBench is a tiny hand-written sequential netlist: one
// register between two combinational stages, exercising DFF parsing,
// launch (clk->Q) and capture (D-pin) paths through the public facade.
const clockedSmokeBench = `# sequential smoke
INPUT(a)
INPUT(b)
OUTPUT(y)
q1 = DFF(d1)
d1 = AND(a, b)
y = NAND(q1, b)
`

// TestClockedBenchThroughFacade is the tier-1 sequential smoke: parse a
// clocked .bench, build the graph, and report per-register setup AND hold
// slack using only ssta-package names.
func TestClockedBenchThroughFacade(t *testing.T) {
	flow := DefaultFlow()
	c, err := ParseBench("smoke.bench", strings.NewReader(clockedSmokeBench))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := flow.Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Sequential() {
		t.Fatal("parsed clocked bench produced a combinational graph")
	}
	seq, err := g.SequentialSlacks(ClockSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := seq.Clock.PeriodPS, DefaultClock().PeriodPS; got != want {
		t.Fatalf("zero clock spec normalized to %g ps, want default %g", got, want)
	}
	if len(seq.Regs) != 1 {
		t.Fatalf("got %d registers, want 1", len(seq.Regs))
	}
	for _, r := range seq.Regs {
		if r.Setup == nil || r.Hold == nil {
			t.Fatalf("register %q missing slack forms: setup=%v hold=%v", r.Name, r.Setup, r.Hold)
		}
		if r.Setup.Std() <= 0 {
			t.Fatalf("register %q setup slack has no spread", r.Name)
		}
	}
	if seq.WorstSetup == nil || seq.WorstHold == nil {
		t.Fatal("missing worst-case slack forms")
	}
	// With one register the worst setup is that register's setup.
	if seq.WorstSetup.Mean() != seq.Regs[0].Setup.Mean() {
		t.Fatalf("worst setup mean %g != sole register's %g",
			seq.WorstSetup.Mean(), seq.Regs[0].Setup.Mean())
	}
}

// TestClockedBatchAndSweep: AnalyzeBatch fills BatchResult.Seq for clocked
// circuits under the default clock, and a clock-only scenario sweep over the
// same graph shares prep while reshaping the slack.
func TestClockedBatchAndSweep(t *testing.T) {
	flow := DefaultFlow()
	c, err := Clocked(C17())
	if err != nil {
		t.Fatal(err)
	}
	results := flow.AnalyzeBatch([]BatchItem{
		{Name: "clk", Circuit: c},
		{Name: "comb", Circuit: C17()},
	}, BatchOptions{Workers: 1})
	clk, comb := results[0], results[1]
	if clk.Err != nil || comb.Err != nil {
		t.Fatalf("batch errors: clk=%v comb=%v", clk.Err, comb.Err)
	}
	if clk.Seq == nil {
		t.Fatal("clocked batch item has no sequential result")
	}
	if comb.Seq != nil {
		t.Fatal("combinational batch item grew a sequential result")
	}

	rep, err := SweepAnalyzeGraph(context.Background(), clk.Graph, []Scenario{
		{Name: "base"},
		{Name: "slow", ClockPeriodPS: 2 * DefaultClock().PeriodPS},
	}, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, slow := rep.Results[0], rep.Results[1]
	if base.Err != nil || slow.Err != nil {
		t.Fatalf("sweep errors: %v / %v", base.Err, slow.Err)
	}
	if base.SetupSlack == nil || slow.SetupSlack == nil || base.HoldSlack == nil {
		t.Fatal("sweep results missing slack stats")
	}
	// Doubling the period adds exactly one period of setup slack (the
	// constraint is linear in T) and leaves hold untouched.
	gain := slow.SetupSlack.Mean - base.SetupSlack.Mean
	if diff := gain - DefaultClock().PeriodPS; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("period doubling gained %g ps of setup slack, want %g", gain, DefaultClock().PeriodPS)
	}
	if slow.HoldSlack.Mean != base.HoldSlack.Mean {
		t.Fatalf("hold slack moved with the period: %g vs %g", slow.HoldSlack.Mean, base.HoldSlack.Mean)
	}
	if !slow.Shared {
		t.Fatal("clock-only scenario did not share base prep")
	}
}

// TestGeneratedRegisteredDesignOracle is the tier-2 check: a generated
// registered benchmark's analytic setup/hold slack agrees with Monte Carlo
// through the facade's ClockedBenchGraph path.
func TestGeneratedRegisteredDesignOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping sequential MC oracle in -short mode")
	}
	flow := DefaultFlow()
	g, _, err := flow.ClockedBenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateSequential(g, ClockSpec{PeriodPS: 700, SkewPS: 10, JitterPS: 8},
		MCConfig{Samples: 12000, Seed: 11}, mc.Tolerance{Mean: 0.12, Sigma: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("sequential validation failed:\n  setup %v\n  hold  %v", rep.Setup, rep.Hold)
	}
}

// BenchmarkSequentialAnalyze measures the full sequential slack pass —
// late + early arrival propagation plus per-register slack assembly —
// over a registered c880.
func BenchmarkSequentialAnalyze(b *testing.B) {
	g, _, err := DefaultFlow().ClockedBenchGraph("c880", 1)
	if err != nil {
		b.Fatal(err)
	}
	clock := ClockSpec{PeriodPS: 700, JitterPS: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SequentialSlacks(clock); err != nil {
			b.Fatal(err)
		}
	}
}
