package ssta

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/timing"
)

// Session persistence (ROADMAP item 5a): a SessionSnapshot is the complete
// durable state of an analysis session — the timing graph with its full
// edit history baked in (tombstones, restored topological order), the
// active MCMM sweep's scenarios and options, and the criticality-tracking
// enablement. Encode seals it in a checksummed, versioned store envelope;
// RestoreSession rebuilds a live session from it, paying one full
// propagation (which reproduces the incrementally maintained delay at
// propagation tolerance, by the engine's 1e-12 equivalence contract).
//
// Hierarchical sessions snapshot their stitched top graph and restore as
// flat sessions: the graph, delays and sweep are preserved exactly, while
// design-structure edits (set_net_delay, swap_module) are no longer
// available on the restored session.

// SessionSnapshotKind and SessionSnapshotVersion identify a sealed session
// snapshot (see internal/store's envelope).
const (
	SessionSnapshotKind    = "ssta-session"
	SessionSnapshotVersion = 1
)

// SweepSnapshot is the durable state of a session's active MCMM sweep.
type SweepSnapshot struct {
	Scenarios []scenario.Spec `json:"scenarios"`
	Workers   int             `json:"workers,omitempty"`
	TopK      int             `json:"top_k,omitempty"`
	Quantile  float64         `json:"quantile,omitempty"`
}

// CritSnapshot is the durable state of a session's criticality tracking.
type CritSnapshot struct {
	Workers     int     `json:"workers,omitempty"`
	ScreenDelta float64 `json:"screen_delta,omitempty"`
}

// SessionSnapshot is the complete durable state of a Session.
type SessionSnapshot struct {
	// Hier records that the snapshot came from a hierarchical session (it
	// restores flat; see the file comment).
	Hier  bool                  `json:"hier,omitempty"`
	Graph *timing.GraphSnapshot `json:"graph"`
	Sweep *SweepSnapshot        `json:"sweep,omitempty"`
	Crit  *CritSnapshot         `json:"crit,omitempty"`
	// MeanPS is the mean circuit delay at snapshot time — an end-to-end
	// integrity cross-check on restore, over and above the envelope
	// checksum: it catches a snapshot that decodes cleanly but propagates
	// to a different answer.
	MeanPS float64 `json:"mean_ps,omitempty"`
}

// Snapshot captures the session's durable state under the session lock.
func (s *Session) Snapshot() *SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &SessionSnapshot{
		Hier:  s.hs != nil,
		Graph: s.graph.Snapshot(),
	}
	if s.delay != nil {
		snap.MeanPS = s.delay.Mean()
	}
	if s.sweep != nil {
		sw := &SweepSnapshot{
			Workers:  s.sweep.opt.Workers,
			TopK:     s.sweep.opt.TopK,
			Quantile: s.sweep.opt.Quantile,
		}
		for _, sc := range s.sweep.scens {
			// Session sweeps never carry swaps (SetSweep normalizes with
			// allowSwaps=false), so SpecOf cannot fail here.
			sp, err := scenario.SpecOf(sc)
			if err != nil {
				continue
			}
			sw.Scenarios = append(sw.Scenarios, sp)
		}
		snap.Sweep = sw
	}
	if s.critOn {
		snap.Crit = &CritSnapshot{Workers: s.critOpt.Workers, ScreenDelta: s.critOpt.ScreenDelta}
	}
	return snap
}

// Encode seals the snapshot in a checksummed store envelope.
func (snap *SessionSnapshot) Encode() ([]byte, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("ssta: encode session snapshot: %w", err)
	}
	return store.Seal(SessionSnapshotKind, SessionSnapshotVersion, payload), nil
}

// DecodeSessionSnapshot opens and decodes a sealed session snapshot.
// Envelope and payload failures surface as store.ErrCorrupt (or
// store.ErrVersion for kind/version skew) so callers quarantine instead of
// aborting a warm start.
func DecodeSessionSnapshot(data []byte) (*SessionSnapshot, error) {
	payload, err := store.OpenKind(data, SessionSnapshotKind, SessionSnapshotVersion)
	if err != nil {
		return nil, err
	}
	var snap SessionSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("%w: session payload: %v", store.ErrCorrupt, err)
	}
	return &snap, nil
}

// RestoreSession rebuilds a live session from a snapshot: the graph is
// reconstructed and validated, fully propagated once, cross-checked
// against the snapshot's recorded mean delay, and the sweep and
// criticality tracking are re-established with their snapshotted options.
func (f *Flow) RestoreSession(ctx context.Context, snap *SessionSnapshot) (*Session, error) {
	if snap == nil || snap.Graph == nil {
		return nil, errors.New("ssta: session snapshot has no graph")
	}
	g, err := timing.FromSnapshot(snap.Graph)
	if err != nil {
		return nil, fmt.Errorf("ssta: restore session graph: %w", err)
	}
	inc, err := g.NewIncrementalCtx(ctx)
	if err != nil {
		return nil, err
	}
	delay, err := inc.MaxDelay()
	if err != nil {
		return nil, err
	}
	if snap.MeanPS != 0 {
		if m := delay.Mean(); math.Abs(m-snap.MeanPS) > 1e-6*(1+math.Abs(snap.MeanPS)) {
			return nil, fmt.Errorf("ssta: restored session delay %.9g ps disagrees with checkpointed %.9g ps", m, snap.MeanPS)
		}
	}
	s := &Session{graph: g, inc: inc, delay: delay, restoredFlat: snap.Hier}
	if snap.Sweep != nil {
		scens := make([]Scenario, len(snap.Sweep.Scenarios))
		for i, sp := range snap.Sweep.Scenarios {
			scens[i] = sp.Scenario()
		}
		opt := SweepOptions{
			Workers:  snap.Sweep.Workers,
			TopK:     snap.Sweep.TopK,
			Quantile: snap.Sweep.Quantile,
		}
		if _, err := s.SetSweep(ctx, scens, opt); err != nil {
			return nil, fmt.Errorf("ssta: restore session sweep: %w", err)
		}
	}
	if snap.Crit != nil {
		opt := CriticalityOptions{Workers: snap.Crit.Workers, ScreenDelta: snap.Crit.ScreenDelta}
		if _, err := s.EnableCriticality(ctx, opt); err != nil {
			return nil, fmt.Errorf("ssta: restore session criticality: %w", err)
		}
	}
	return s, nil
}

// DecodeModelSnapshot re-exports the extracted-model snapshot decoder
// (models seal with (*Model).EncodeSnapshot).
var DecodeModelSnapshot = core.DecodeModelSnapshot
