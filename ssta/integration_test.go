package ssta

import (
	"math"
	"testing"

	"repro/internal/mc"
)

// TestTableOneInvariantsEndToEnd runs the full Table-I pipeline (generate,
// place, extract, Monte Carlo reference) on two small benchmarks and
// asserts the paper's qualitative claims as hard invariants.
func TestTableOneInvariantsEndToEnd(t *testing.T) {
	flow := DefaultFlow()
	for _, name := range []string{"c432", "c880"} {
		spec, _ := SpecByName(name)
		g, _, err := flow.BenchGraph(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Structural identity with the paper's Eo/Vo columns.
		if len(g.Edges) != spec.Edges || g.NumVerts != spec.Gates+spec.PIs {
			t.Fatalf("%s: graph %d/%d, want %d/%d", name,
				len(g.Edges), g.NumVerts, spec.Edges, spec.Gates+spec.PIs)
		}
		model, err := flow.Extract(g, ExtractOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Substantial compression at delta = 0.05.
		if model.Stats.PE() > 0.6 || model.Stats.PV() > 0.6 {
			t.Fatalf("%s: compression pe=%.2f pv=%.2f too weak", name,
				model.Stats.PE(), model.Stats.PV())
		}
		// Model accuracy against Monte Carlo on the original netlist:
		// worst-case mean error small, sigma error moderate (the paper
		// reports <=1.21% and <=1.6%).
		ref, err := mc.AllPairsStats(g, mc.Config{Samples: 4000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ap, err := model.Graph.AllPairsDelays(0)
		if err != nil {
			t.Fatal(err)
		}
		var merr, verr float64
		for i := range ap.M {
			for j, f := range ap.M[i] {
				if f == nil || !ref.Reachable[i][j] {
					continue
				}
				merr = math.Max(merr, math.Abs(f.Mean()-ref.Mean[i][j])/ref.Mean[i][j])
				if ref.Std[i][j] > 0 {
					verr = math.Max(verr, math.Abs(f.Std()-ref.Std[i][j])/ref.Std[i][j])
				}
			}
		}
		if merr > 0.02 {
			t.Errorf("%s: merr %.4f above 2%%", name, merr)
		}
		if verr > 0.06 {
			t.Errorf("%s: verr %.4f above 6%%", name, verr)
		}
		// Reachability of the model matches the original exactly.
		for i := range ap.M {
			for j := range ap.M[i] {
				if (ap.M[i][j] != nil) != ref.Reachable[i][j] {
					t.Fatalf("%s: pair (%d,%d) reachability drift", name, i, j)
				}
			}
		}
	}
}

// TestFigSevenInvariantsEndToEnd asserts the Fig. 7 ordering at a small
// scale: KS(proposed) < KS(globalOnly) and the global-only sigma is
// understated.
func TestFigSevenInvariantsEndToEnd(t *testing.T) {
	flow := DefaultFlow()
	mod := buildTestModule(t, 4)
	d, err := flow.QuadDesign("quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	full, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := d.Analyze(GlobalOnly)
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MaxDelaySamples(flat, MCConfig{Samples: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var mean, m2 float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		m2 += (s - mean) * (s - mean)
	}
	std := math.Sqrt(m2 / float64(len(samples)))

	if rel := math.Abs(full.Delay.Mean()-mean) / mean; rel > 0.02 {
		t.Errorf("proposed mean off MC by %.2f%%", 100*rel)
	}
	if glob.Delay.Std() >= full.Delay.Std() {
		t.Error("global-only sigma should be understated")
	}
	if math.Abs(full.Delay.Std()-std)/std > math.Abs(glob.Delay.Std()-std)/std {
		t.Error("proposed sigma should be closer to MC than global-only")
	}
}
