package ssta_test

import (
	"context"
	"math"
	"testing"

	"repro/ssta"
)

var sweepSpec = ssta.TopoSpec{Name: "sw", PIs: 8, POs: 4, Gates: 60, Edges: 130, Depth: 8}

func sweepFormDiff(a, b *ssta.Form) float64 {
	d := math.Abs(a.Nominal - b.Nominal)
	for i := range a.Glob {
		if v := math.Abs(a.Glob[i] - b.Glob[i]); v > d {
			d = v
		}
	}
	for i := range a.Loc {
		if v := math.Abs(a.Loc[i] - b.Loc[i]); v > d {
			d = v
		}
	}
	if v := math.Abs(a.Rand - b.Rand); v > d {
		d = v
	}
	return d
}

// sweepModule generates and extracts one module of the sweep spec.
func sweepModule(t testing.TB, flow *ssta.Flow, seed int64) *ssta.Module {
	t.Helper()
	c, err := ssta.Generate(sweepSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, plan, err := flow.Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ssta.NewModule(sweepSpec.Name, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestSweepAnalyzeMatchesIndependent is the design-level equivalence
// contract: every sweep scenario — shared-prep rescales and private-stitch
// module swaps alike — matches an independent from-scratch analysis at
// 1e-9, and the envelope is the max over those analyses.
func TestSweepAnalyzeMatchesIndependent(t *testing.T) {
	flow := ssta.DefaultFlow()
	mod := sweepModule(t, flow, 1)
	alt := sweepModule(t, flow, 2)
	d, err := flow.QuadDesign("sweep-quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	scens := []ssta.Scenario{
		{Name: "unit"},
		{Name: "hot", Derate: 1.15},
		{Name: "sigma-up", GlobSigma: 1.4, RandSigma: 1.2},
		{Name: "slow-wires", NetScale: 1.5},
		{Name: "eco-B", Swaps: map[string]*ssta.Module{"B": alt}},
	}
	rep, err := ssta.SweepAnalyze(context.Background(), d, ssta.FullCorrelation, scens,
		ssta.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(scens) {
		for _, r := range rep.Results {
			if r.Err != nil {
				t.Logf("scenario %q: %v", r.Name, r.Err)
			}
		}
		t.Fatalf("completed %d of %d scenarios", rep.Completed, len(scens))
	}

	// Independent references: the unit scenario against AnalyzeOpt, the
	// rescale scenarios against explicitly transformed stitched graphs,
	// the swap scenario against a from-scratch analysis of a swapped copy.
	base, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if diff := sweepFormDiff(rep.Results[0].Delay, base.Delay); diff > 1e-9 {
		t.Fatalf("unit scenario differs from AnalyzeOpt by %g", diff)
	}
	stitched, err := d.Stitch(context.Background(), ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var envMean, envStd, envQ float64
	for i, sc := range scens {
		var want *ssta.Form
		if len(sc.Swaps) > 0 {
			dd := d.CopyStructure()
			dd.Instances[1].Module = alt
			res, err := dd.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			want = res.Delay
			if rep.Results[i].Shared {
				t.Fatalf("swap scenario %q claims shared prep", sc.Name)
			}
		} else {
			var err error
			want, err = sc.TransformGraph(stitched.Graph).MaxDelay()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Results[i].Shared {
				t.Fatalf("rescale scenario %q did not share prep", sc.Name)
			}
		}
		if diff := sweepFormDiff(rep.Results[i].Delay, want); diff > 1e-9 {
			t.Fatalf("scenario %q differs from independent analysis by %g", sc.Name, diff)
		}
		envMean = math.Max(envMean, want.Mean())
		envStd = math.Max(envStd, want.Std())
		envQ = math.Max(envQ, want.Quantile(0.99865))
	}
	if math.Abs(rep.Envelope.Mean-envMean) > 1e-9 ||
		math.Abs(rep.Envelope.Std-envStd) > 1e-9 ||
		math.Abs(rep.Envelope.Quantile-envQ) > 1e-9 {
		t.Fatalf("envelope %+v, want mean %g std %g q %g", rep.Envelope, envMean, envStd, envQ)
	}
}

// TestSweepCrossSeedSwap pins the deterministic-port-name contract of the
// benchmark generator: modules generated from the same spec with different
// seeds expose identical port-name sets, so a cross-seed module swap
// stitches cleanly (this was seed-dependent before port names became
// spec-derived).
func TestSweepCrossSeedSwap(t *testing.T) {
	flow := ssta.DefaultFlow()
	for _, seeds := range [][2]int64{{1, 2}, {3, 9}, {5, 11}} {
		mod := sweepModule(t, flow, seeds[0])
		alt := sweepModule(t, flow, seeds[1])
		d, err := flow.QuadDesign("xseed-quad", mod)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ssta.SweepAnalyze(context.Background(), d, ssta.FullCorrelation,
			[]ssta.Scenario{
				{Name: "unit"},
				{Name: "swap-all", Swaps: map[string]*ssta.Module{
					"A": alt, "B": alt, "C": alt, "D": alt,
				}},
			}, ssta.SweepOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Err != nil {
				t.Fatalf("seeds %v: scenario %q: %v", seeds, r.Name, r.Err)
			}
		}
	}
}

// TestSessionSweepIncremental drives a flat session with an active sweep
// through an edit sequence and checks every post-edit sweep report against
// a fresh from-scratch sweep of the edited graph.
func TestSessionSweepIncremental(t *testing.T) {
	flow := ssta.DefaultFlow()
	c, err := ssta.Generate(sweepSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := flow.Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := flow.NewGraphSession(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	scens := []ssta.Scenario{
		{Name: "unit"},
		{Name: "hot", Derate: 1.2},
		{Name: "sigma", LocSigma: 1.5, RandSigma: 1.3},
		{Name: "eco", EdgeScales: map[int]float64{7: 1.25}},
	}
	rep0, err := sess.SetSweep(context.Background(), scens, ssta.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Completed != len(scens) {
		t.Fatalf("initial sweep completed %d of %d", rep0.Completed, len(scens))
	}

	sg := sess.Graph()
	in0 := sg.Inputs[0]
	batches := [][]ssta.Edit{
		{{Op: ssta.EditScaleDelay, Edge: 5, Scale: 1.3}},
		{{Op: ssta.EditSetNominal, Edge: 9, Value: 55}, {Op: ssta.EditScaleDelay, Edge: 20, Scale: 0.8}},
		{{Op: ssta.EditAddEdge, From: in0, To: sg.Outputs[0], Value: 12}},
		{{Op: ssta.EditRemoveEdge, Edge: 3}},
	}
	for bi, batch := range batches {
		rep, err := sess.Apply(context.Background(), batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if rep.Sweep == nil {
			t.Fatalf("batch %d: no sweep report", bi)
		}
		// Fresh reference sweep over the session's live (edited) graph.
		want, err := ssta.SweepAnalyzeGraph(context.Background(), sess.Graph(), scens, ssta.SweepOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range scens {
			got, ref := rep.Sweep.Results[i], want.Results[i]
			if got.Err != nil || ref.Err != nil {
				t.Fatalf("batch %d scenario %q: got err %v, ref err %v", bi, scens[i].Name, got.Err, ref.Err)
			}
			if diff := sweepFormDiff(got.Delay, ref.Delay); diff > 1e-9 {
				t.Fatalf("batch %d scenario %q: session sweep differs from fresh sweep by %g",
					bi, scens[i].Name, diff)
			}
		}
		if got := sess.Sweep(); got != rep.Sweep {
			t.Fatalf("batch %d: Sweep() does not return the latest report", bi)
		}
	}
	sess.ClearSweep()
	if sess.Sweep() != nil {
		t.Fatal("ClearSweep left a report behind")
	}
	if rep, err := sess.Apply(context.Background(), []ssta.Edit{{Op: ssta.EditScaleDelay, Edge: 5, Scale: 1.0 / 1.3}}); err != nil {
		t.Fatal(err)
	} else if rep.Sweep != nil {
		t.Fatal("cleared sweep still reported")
	}
}

// TestDesignSessionSweepAcrossSwap checks that a hierarchical session's
// sweep survives a module swap (full rebuild onto the restitched graph)
// and net-delay edits (incremental path), matching fresh sweeps throughout.
func TestDesignSessionSweepAcrossSwap(t *testing.T) {
	flow := ssta.DefaultFlow()
	mod := sweepModule(t, flow, 1)
	alt := sweepModule(t, flow, 2)
	d, err := flow.QuadDesign("sess-quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := flow.NewDesignSession(context.Background(), d, ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	scens := []ssta.Scenario{
		{Name: "unit"},
		{Name: "derated", Derate: 1.1, NetScale: 1.3},
	}
	if _, err := sess.SetSweep(context.Background(), scens, ssta.SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	// Module-swap scenarios are session edits, not sweep scenarios.
	if _, err := sess.SetSweep(context.Background(), []ssta.Scenario{
		{Name: "bad", Swaps: map[string]*ssta.Module{"B": alt}},
	}, ssta.SweepOptions{}); err == nil {
		t.Fatal("swap scenario accepted by a session sweep")
	}

	batches := [][]ssta.Edit{
		{{Op: ssta.EditSetNetDelay, Net: 0, Value: 9}},
		{{Op: ssta.EditSwapModule, Instance: "B", Module: alt}},
		{{Op: ssta.EditSetNetDelay, Net: 1, Value: 4}},
	}
	for bi, batch := range batches {
		rep, err := sess.Apply(context.Background(), batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if rep.Sweep == nil {
			t.Fatalf("batch %d: no sweep report", bi)
		}
		want, err := ssta.SweepAnalyzeGraph(context.Background(), sess.Graph(), scens, ssta.SweepOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range scens {
			got, ref := rep.Sweep.Results[i], want.Results[i]
			if got.Err != nil || ref.Err != nil {
				t.Fatalf("batch %d scenario %q: got err %v, ref err %v", bi, scens[i].Name, got.Err, ref.Err)
			}
			if diff := sweepFormDiff(got.Delay, ref.Delay); diff > 1e-9 {
				t.Fatalf("batch %d scenario %q: session sweep differs from fresh sweep by %g",
					bi, scens[i].Name, diff)
			}
		}
	}
}

// TestSweepScenarioNamesDefaulted checks unnamed scenarios pick up stable
// default names in reports.
func TestSweepScenarioNamesDefaulted(t *testing.T) {
	flow := ssta.DefaultFlow()
	c, err := ssta.Generate(sweepSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := flow.Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ssta.SweepAnalyzeGraph(context.Background(), g,
		[]ssta.Scenario{{}, {Derate: 1.1}}, ssta.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Name != "scenario-0" || rep.Results[1].Name != "scenario-1" {
		t.Fatalf("default names wrong: %q, %q", rep.Results[0].Name, rep.Results[1].Name)
	}
}
