package ssta_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/ssta"
)

// ambiguousDesign returns a structurally plausible *Design usable as a
// second input in ambiguity tests. It is never analyzed.
func dummyDesign() *ssta.Design { return &ssta.Design{Name: "dummy"} }

func TestBatchItemAmbiguousInputsRejected(t *testing.T) {
	flow := ssta.DefaultFlow()
	ckt := ssta.C17()
	g, _, err := flow.Graph(ssta.C17())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		item ssta.BatchItem
	}{
		{"Design+Graph", ssta.BatchItem{Design: dummyDesign(), Graph: g}},
		{"Design+Circuit", ssta.BatchItem{Design: dummyDesign(), Circuit: ckt}},
		{"Design+Bench", ssta.BatchItem{Design: dummyDesign(), Bench: "c432"}},
		{"Graph+Circuit", ssta.BatchItem{Graph: g, Circuit: ckt}},
		{"Graph+Bench", ssta.BatchItem{Graph: g, Bench: "c432"}},
		{"Circuit+Bench", ssta.BatchItem{Circuit: ckt, Bench: "c432"}},
		{"All", ssta.BatchItem{Design: dummyDesign(), Graph: g, Circuit: ckt, Bench: "c432"}},
	}
	for _, tc := range cases {
		res := flow.AnalyzeBatch([]ssta.BatchItem{tc.item}, ssta.BatchOptions{Workers: 1})
		if res[0].Err == nil {
			t.Fatalf("%s: ambiguous item accepted", tc.name)
		}
		if !strings.Contains(res[0].Err.Error(), "exactly one") {
			t.Fatalf("%s: error does not explain the contract: %v", tc.name, res[0].Err)
		}
		for _, want := range strings.Split(tc.name, "+") {
			if want == "All" {
				continue
			}
			if !strings.Contains(res[0].Err.Error(), want) {
				t.Fatalf("%s: error does not name input %s: %v", tc.name, want, res[0].Err)
			}
		}
		if res[0].Delay != nil || res[0].Graph != nil {
			t.Fatalf("%s: ambiguous item still produced results", tc.name)
		}
	}
}

// TestBatchItemPanicIsolated: a panicking item must land in its
// BatchResult.Err and leave the rest of the batch untouched.
func TestBatchItemPanicIsolated(t *testing.T) {
	flow := ssta.DefaultFlow()
	// A design that passes the input-count validation but panics inside
	// analysis: the instance has a module whose Model is nil, so the port
	// check dereferences a nil pointer.
	boom := &ssta.Design{
		Name: "boom", Width: 10, Height: 10, Pitch: 10,
		Corr: flow.Corr, Params: flow.Lib.Params,
		Instances: []*ssta.Instance{
			{Name: "A", Module: &ssta.Module{Name: "m", NX: 1, NY: 1, Pitch: 10}},
		},
		PrimaryInputs:  []ssta.PortRef{{Instance: "A", Port: "x"}},
		PrimaryOutputs: []ssta.PortRef{{Instance: "A", Port: "y"}},
	}
	items := []ssta.BatchItem{
		{Name: "ok1", Circuit: ssta.C17()},
		{Design: boom},
		{Name: "ok2", Circuit: ssta.C17()},
	}
	for _, workers := range []int{1, 3} {
		res := flow.AnalyzeBatch(items, ssta.BatchOptions{Workers: workers})
		if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "panic") {
			t.Fatalf("workers=%d: panicking item Err = %v, want panic error", workers, res[1].Err)
		}
		for _, k := range []int{0, 2} {
			if res[k].Err != nil {
				t.Fatalf("workers=%d: healthy item %d failed: %v", workers, k, res[k].Err)
			}
			if res[k].Delay == nil {
				t.Fatalf("workers=%d: healthy item %d has no delay", workers, k)
			}
		}
	}
}

// TestAnalyzeBatchCtxCancelMidBatch: once ctx is cancelled, completed
// items keep their results and unstarted items report the ctx error.
func TestAnalyzeBatchCtxCancelMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	items := []ssta.BatchItem{
		{Name: "a", Circuit: ssta.C17()},
		{Name: "b", Circuit: ssta.C17()},
		{Name: "c", Circuit: ssta.C17()},
	}
	var done atomic.Int32
	res := ssta.DefaultFlow().AnalyzeBatchCtx(ctx, items, ssta.BatchOptions{
		Workers: 1, // serial, in index order: the cancel point is deterministic
		OnItemDone: func(k int, r *ssta.BatchResult) {
			if done.Add(1) == 1 {
				cancel()
			}
		},
	})
	if res[0].Err != nil || res[0].Delay == nil {
		t.Fatalf("completed item lost its result: %+v", res[0])
	}
	for k := 1; k < 3; k++ {
		if !errors.Is(res[k].Err, context.Canceled) {
			t.Fatalf("item %d: Err = %v, want context.Canceled", k, res[k].Err)
		}
		if res[k].Delay != nil {
			t.Fatalf("item %d produced a delay after cancellation", k)
		}
	}
}

// TestAnalyzeBatchCtxDeadline: an expired deadline short-circuits every
// item with context.DeadlineExceeded instead of running the batch.
func TestAnalyzeBatchCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	items := make([]ssta.BatchItem, 8)
	for k := range items {
		items[k] = ssta.BatchItem{Name: "x", Bench: "c6288", Seed: int64(k)}
	}
	start := time.Now()
	res := ssta.AnalyzeBatchCtx(ctx, items, ssta.BatchOptions{Workers: 2})
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("expired batch took %v", d)
	}
	for k, r := range res {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("item %d: Err = %v, want context.DeadlineExceeded", k, r.Err)
		}
	}
}
