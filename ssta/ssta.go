// Package ssta is the public facade of the hierarchical statistical static
// timing analysis library (reproduction of Li et al., "On Hierarchical
// Statistical Static Timing Analysis", DATE 2009).
//
// It bundles the default analysis flow — synthetic 90nm library, the
// paper's variation setup, grid-based spatial correlation with PCA — and
// re-exports the domain types. A typical session:
//
//	flow := ssta.DefaultFlow()
//	ckt := ssta.C17()
//	g, plan, err := flow.Graph(ckt)
//	delay, err := g.MaxDelay()             // statistical circuit delay
//	model, err := flow.Extract(g, ssta.ExtractOptions{})
//	mod, err := ssta.NewModule("ip", model, plan)
//
// See the examples directory for complete programs, including the paper's
// hierarchical four-multiplier experiment.
package ssta

import (
	"context"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/mc"
	"repro/internal/place"
	"repro/internal/timing"
	"repro/internal/variation"
)

// Re-exported domain types. The underlying packages carry the full
// documentation.
type (
	// Circuit is a combinational gate-level netlist.
	Circuit = circuit.Circuit
	// TopoSpec describes the structural footprint of a generated benchmark.
	TopoSpec = circuit.TopoSpec
	// Graph is a statistical timing graph.
	Graph = timing.Graph
	// Form is a canonical first-order delay expression.
	Form = canon.Form
	// Model is an extracted gray-box timing model.
	Model = core.Model
	// ExtractOptions controls model extraction.
	ExtractOptions = core.Options
	// ExtractCache memoizes model extraction (thread-safe, singleflight,
	// LRU-bounded).
	ExtractCache = core.ExtractCache
	// CacheMetrics is a snapshot of the extraction-cache counters.
	CacheMetrics = core.CacheMetrics
	// CriticalityResult is the all-pairs edge-criticality snapshot.
	CriticalityResult = core.CriticalityResult
	// CriticalityOptions tunes the criticality engine (workers, screen).
	CriticalityOptions = core.CriticalityOptions
	// CriticalityRefreshStats reports what an incremental criticality
	// refresh recomputed.
	CriticalityRefreshStats = core.CriticalityRefreshStats
	// Mode selects the hierarchical correlation treatment.
	Mode = hier.Mode
	// AnalyzeOptions tunes the hierarchical engine (workers, caching).
	AnalyzeOptions = hier.AnalyzeOptions
	// Module is a pre-characterized timing model with placement geometry.
	Module = hier.Module
	// Instance is a placed module occurrence.
	Instance = hier.Instance
	// Design is a hierarchical top-level design.
	Design = hier.Design
	// PortRef names an instance port.
	PortRef = hier.PortRef
	// Net is a point-to-point inter-module connection.
	Net = hier.Net
	// HierResult is the outcome of a hierarchical analysis.
	HierResult = hier.Result
	// MCConfig controls Monte Carlo runs.
	MCConfig = mc.Config
	// ClockSpec describes the clock of a sequential analysis (period, skew,
	// jitter; picoseconds).
	ClockSpec = timing.ClockSpec
	// SeqResult is the per-register statistical setup/hold analysis.
	SeqResult = timing.SeqResult
	// RegSlack is one register's setup/hold slack forms.
	RegSlack = timing.RegSlack
	// Register is the sequential metadata of a timing-graph register.
	Register = timing.Register
	// SegMatrix is the register-to-register path segmentation.
	SegMatrix = timing.SegMatrix
	// Plan is a placement with grid binning.
	Plan = place.Plan
	// Library is a standard-cell timing library.
	Library = cell.Library
	// Parameter is a process parameter with variation.
	Parameter = variation.Parameter
	// CorrelationModel is the distance-based grid correlation.
	CorrelationModel = variation.CorrelationModel
)

// Hierarchical analysis modes.
const (
	// FullCorrelation is the paper's proposed method (variable replacement).
	FullCorrelation = hier.FullCorrelation
	// GlobalOnly keeps only global-variation correlation between modules.
	GlobalOnly = hier.GlobalOnly
)

// Re-exported constructors.
var (
	// C17 returns the embedded ISCAS85 c17 netlist.
	C17 = circuit.C17
	// ParseBench reads an ISCAS85 .bench netlist.
	ParseBench = circuit.ParseBench
	// Generate builds a topology-matched pseudo-random benchmark.
	Generate = circuit.Generate
	// GenerateClocked builds a registered (clocked) variant of a generated
	// benchmark: every PI registered on entry, every PO captured by a DFF.
	GenerateClocked = circuit.GenerateClocked
	// Clocked wraps an existing combinational circuit with input and
	// capture registers.
	Clocked = circuit.Clocked
	// ParseBenchCombinational parses a .bench netlist, rejecting sequential
	// elements with an explicit error (the pre-register compatibility mode).
	ParseBenchCombinational = circuit.ParseBenchCombinational
	// DefaultClock is the clock assumed when a sequential analysis runs
	// without an explicit spec.
	DefaultClock = timing.DefaultClock
	// MinDelaySamples runs structural shortest-path Monte Carlo on a flat
	// graph — the sampling reference for Graph.MinDelay.
	MinDelaySamples = mc.MinDelaySamples
	// SequentialSamples draws Monte Carlo worst setup/hold slack samples.
	SequentialSamples = mc.SequentialSamples
	// ValidateSequential is the sequential Monte Carlo differential oracle.
	ValidateSequential = mc.ValidateSequential
	// SpecByName looks up one of the ten ISCAS85 structural specs.
	SpecByName = circuit.SpecByName
	// ISCAS85Specs lists the structural specs behind the paper's Table I.
	ISCAS85Specs = circuit.ISCAS85Specs
	// ArrayMultiplier builds a structural n x n multiplier (c6288 is 16x16).
	ArrayMultiplier = circuit.ArrayMultiplier
	// NewModule bundles an extracted model with its placement geometry.
	NewModule = hier.NewModule
	// MaxDelaySamples runs structural Monte Carlo on a flat graph.
	MaxDelaySamples = mc.MaxDelaySamples
	// AllPairsMCStats estimates Monte Carlo means/stds of all IO delays.
	AllPairsMCStats = mc.AllPairsStats
	// EdgeCriticalities runs the all-pairs criticality engine.
	EdgeCriticalities = core.EdgeCriticalities
	// EdgeCriticalitiesCtx is EdgeCriticalities with cancellation.
	EdgeCriticalitiesCtx = core.EdgeCriticalitiesCtx
	// EdgeCriticalitiesOpt exposes the criticality screen (see
	// CriticalityOptions).
	EdgeCriticalitiesOpt = core.EdgeCriticalitiesOpt
	// ReadModelJSON loads a serialized timing model.
	ReadModelJSON = core.ReadJSON
	// NewExtractCache returns an empty thread-safe extraction cache with
	// the default entry bound.
	NewExtractCache = core.NewExtractCache
	// NewExtractCacheSized returns an extraction cache with an explicit
	// entry cap and cost budget (0 disables the respective bound).
	NewExtractCacheSized = core.NewExtractCacheSized
	// PrepCacheStats reports process-wide per-mode analysis-prep cache
	// hits and misses across all hierarchical designs.
	PrepCacheStats = hier.PrepCacheStats
)

// Flow bundles the analysis context: cell library, variation parameters and
// spatial-correlation setup, plus a shared extraction cache so each
// distinct module graph is extracted at most once per option set.
type Flow struct {
	Lib   *cell.Library
	Corr  *variation.CorrelationModel
	Pitch float64
	// Cache memoizes Extract results. DefaultFlow installs one; a nil
	// cache makes Extract run the pipeline unconditionally.
	Cache *core.ExtractCache
}

// DefaultFlow returns the paper's Section VI setup: synthetic 90nm library,
// sigma(Leff/Tox/Vth) = 15.7%/5.3%/4.4%, load sigma 15%, neighbor-grid
// correlation 0.92 decaying to the 0.42 global floor at grid distance 15,
// grids holding fewer than 100 cells.
func DefaultFlow() *Flow {
	corr, err := variation.DefaultCorrelation()
	if err != nil {
		// The default parameters are compile-time constants; failure here is
		// a programming error.
		panic(fmt.Sprintf("ssta: default correlation: %v", err))
	}
	return &Flow{
		Lib:   cell.Synthetic90nm(),
		Corr:  corr,
		Pitch: place.DefaultPitch,
		Cache: core.NewExtractCache(),
	}
}

// Graph places the circuit, builds the grid-based spatial model, and
// constructs the statistical timing graph.
func (f *Flow) Graph(c *Circuit) (*Graph, *Plan, error) {
	plan, err := place.Topological(c, f.Pitch)
	if err != nil {
		return nil, nil, err
	}
	gm, err := variation.NewGridModel(plan.NX, plan.NY, plan.Pitch, f.Corr)
	if err != nil {
		return nil, nil, err
	}
	g, err := timing.Build(c, f.Lib, plan, gm)
	if err != nil {
		return nil, nil, err
	}
	return g, plan, nil
}

// Extract runs timing-model extraction (paper Sections III-IV). When the
// flow carries a cache, repeated extraction of the same graph with the
// same options returns the memoized model; the result must be treated as
// immutable either way.
func (f *Flow) Extract(g *Graph, opt ExtractOptions) (*Model, error) {
	return f.ExtractCtx(context.Background(), g, opt)
}

// ExtractCtx is Extract with cancellable cache waiting: a caller coalesced
// onto another caller's in-flight extraction stops waiting when ctx fires.
func (f *Flow) ExtractCtx(ctx context.Context, g *Graph, opt ExtractOptions) (*Model, error) {
	if f.Cache != nil {
		return f.Cache.ExtractCtx(ctx, g, opt)
	}
	return core.ExtractCtx(ctx, g, opt)
}

// BenchGraph generates the named ISCAS85-like benchmark and its timing
// graph in one call.
func (f *Flow) BenchGraph(name string, seed int64) (*Graph, *Plan, error) {
	spec, ok := circuit.SpecByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("ssta: unknown benchmark %q", name)
	}
	c, err := circuit.Generate(spec, seed)
	if err != nil {
		return nil, nil, err
	}
	return f.Graph(c)
}

// ClockedBenchGraph generates the registered (clocked) variant of the named
// benchmark — input and capture DFF stages wrapping the combinational core —
// and builds its timing graph.
func (f *Flow) ClockedBenchGraph(name string, seed int64) (*Graph, *Plan, error) {
	spec, ok := circuit.SpecByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("ssta: unknown benchmark %q", name)
	}
	c, err := circuit.GenerateClocked(spec, seed)
	if err != nil {
		return nil, nil, err
	}
	return f.Graph(c)
}

// LoadBench parses a .bench netlist and builds its timing graph.
func (f *Flow) LoadBench(name string, r io.Reader) (*Graph, *Plan, error) {
	c, err := circuit.ParseBench(name, r)
	if err != nil {
		return nil, nil, err
	}
	return f.Graph(c)
}

// QuadDesign builds the paper's hierarchical experiment topology (Section
// VI-B): four instances of one module in two columns placed in abutment,
// with the first-column outputs cross-connected to the second-column inputs
// (A feeds D, B feeds C). Column-1 inputs become primary inputs, column-2
// outputs primary outputs.
func (f *Flow) QuadDesign(name string, mod *Module) (*Design, error) {
	return f.QuadDesignGap(name, mod, 0)
}

// QuadDesignGap is QuadDesign with the instances separated by gap grid
// pitches instead of abutted. The paper maximizes correlation by abutment;
// spreading the modules apart is the corresponding ablation — the
// uncovered area becomes filler grids and the inter-module correlation
// decays with distance.
func (f *Flow) QuadDesignGap(name string, mod *Module, gap int) (*Design, error) {
	if gap < 0 {
		return nil, fmt.Errorf("ssta: negative gap %d", gap)
	}
	w, h := mod.Width(), mod.Height()
	gp := float64(gap) * mod.Pitch
	d := &Design{
		Name: name, Width: 2*w + gp, Height: 2*h + gp, Pitch: mod.Pitch,
		Corr: f.Corr, Params: f.Lib.Params,
		Instances: []*Instance{
			{Name: "A", Module: mod, OriginX: 0, OriginY: 0},
			{Name: "B", Module: mod, OriginX: 0, OriginY: h + gp},
			{Name: "C", Module: mod, OriginX: w + gp, OriginY: 0},
			{Name: "D", Module: mod, OriginX: w + gp, OriginY: h + gp},
		},
	}
	ins := mod.Model.Graph.InputNames
	outs := mod.Model.Graph.OutputNames
	n := len(outs)
	if len(ins) < n {
		n = len(ins)
	}
	for k := 0; k < n; k++ {
		d.Nets = append(d.Nets,
			Net{From: PortRef{Instance: "A", Port: outs[k]}, To: PortRef{Instance: "D", Port: ins[k]}},
			Net{From: PortRef{Instance: "B", Port: outs[k]}, To: PortRef{Instance: "C", Port: ins[k]}},
		)
	}
	for _, in := range ins {
		d.PrimaryInputs = append(d.PrimaryInputs,
			PortRef{Instance: "A", Port: in}, PortRef{Instance: "B", Port: in})
	}
	if len(ins) > n {
		for _, in := range ins[n:] {
			d.PrimaryInputs = append(d.PrimaryInputs,
				PortRef{Instance: "C", Port: in}, PortRef{Instance: "D", Port: in})
		}
	}
	for _, out := range outs {
		d.PrimaryOutputs = append(d.PrimaryOutputs,
			PortRef{Instance: "C", Port: out}, PortRef{Instance: "D", Port: out})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
