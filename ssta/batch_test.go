package ssta_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/ssta"
)

func quadDesign(t *testing.T) (*ssta.Flow, *ssta.Design) {
	t.Helper()
	flow := ssta.DefaultFlow()
	c, err := ssta.ArrayMultiplier(4)
	if err != nil {
		t.Fatal(err)
	}
	g, plan, err := flow.Graph(c)
	if err != nil {
		t.Fatal(err)
	}
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ssta.NewModule("mult4", model, plan)
	if err != nil {
		t.Fatal(err)
	}
	d, err := flow.QuadDesign("quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	return flow, d
}

// TestAnalyzeBatchMatchesSerial runs a mixed batch (flat benches, a
// circuit, a hierarchical design in both modes) in parallel and asserts
// every delay matches the one computed by the serial single-item path.
func TestAnalyzeBatchMatchesSerial(t *testing.T) {
	flow, d := quadDesign(t)
	items := []ssta.BatchItem{
		{Bench: "c432", Seed: 1},
		{Bench: "c880", Seed: 1},
		{Name: "c17", Circuit: ssta.C17()},
		{Design: d, Mode: ssta.FullCorrelation},
		{Design: d, Mode: ssta.GlobalOnly},
	}
	batch := flow.AnalyzeBatch(items, ssta.BatchOptions{Workers: 4})
	if len(batch) != len(items) {
		t.Fatalf("got %d results for %d items", len(batch), len(items))
	}
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("item %d (%s): %v", i, r.Name, r.Err)
		}
		if r.Delay == nil {
			t.Fatalf("item %d (%s): nil delay", i, r.Name)
		}
	}

	// Serial references.
	for i, item := range items {
		var wantMean, wantStd float64
		switch {
		case item.Design != nil:
			res, err := item.Design.AnalyzeOpt(item.Mode, ssta.AnalyzeOptions{Workers: 1, DisableCache: true})
			if err != nil {
				t.Fatal(err)
			}
			wantMean, wantStd = res.Delay.Mean(), res.Delay.Std()
		case item.Circuit != nil:
			g, _, err := flow.Graph(item.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			delay, err := g.MaxDelay()
			if err != nil {
				t.Fatal(err)
			}
			wantMean, wantStd = delay.Mean(), delay.Std()
		default:
			g, _, err := flow.BenchGraph(item.Bench, item.Seed)
			if err != nil {
				t.Fatal(err)
			}
			delay, err := g.MaxDelay()
			if err != nil {
				t.Fatal(err)
			}
			wantMean, wantStd = delay.Mean(), delay.Std()
		}
		if got := batch[i].Delay.Mean(); math.Abs(got-wantMean) > 1e-9 {
			t.Errorf("item %d (%s): mean %g != serial %g", i, batch[i].Name, got, wantMean)
		}
		if got := batch[i].Delay.Std(); math.Abs(got-wantStd) > 1e-9 {
			t.Errorf("item %d (%s): std %g != serial %g", i, batch[i].Name, got, wantStd)
		}
	}

	// Labels default to the input names, hierarchical items carry the full
	// result.
	if batch[0].Name != "c432" || batch[2].Name != "c17" || batch[3].Name != "quad" {
		t.Errorf("names = %q, %q, %q", batch[0].Name, batch[2].Name, batch[3].Name)
	}
	if batch[3].Hier == nil || batch[4].Hier == nil {
		t.Error("hierarchical items missing Hier result")
	}
	if batch[3].Hier.Delay.Std() <= batch[4].Hier.Delay.Std() {
		t.Error("FullCorrelation should have larger spread than GlobalOnly on cross-module paths")
	}
}

// TestAnalyzeBatchSharedExtractCache: many items extracting the same graph
// must share one cached model.
func TestAnalyzeBatchSharedExtractCache(t *testing.T) {
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]ssta.BatchItem, 8)
	for i := range items {
		items[i] = ssta.BatchItem{Name: "c432", Graph: g, Extract: true}
	}
	batch := flow.AnalyzeBatch(items, ssta.BatchOptions{Workers: 8})
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Model == nil {
			t.Fatalf("item %d: no model", i)
		}
		if r.Model != batch[0].Model {
			t.Fatalf("item %d: extraction not shared through the cache", i)
		}
	}
	hits, misses := flow.Cache.Stats()
	if misses != 1 {
		t.Fatalf("extraction ran %d times for 8 identical items (hits %d)", misses, hits)
	}
}

// TestAnalyzeBatchErrorIsolation: a failing item reports its error without
// aborting the rest of the batch.
func TestAnalyzeBatchErrorIsolation(t *testing.T) {
	batch := ssta.AnalyzeBatch([]ssta.BatchItem{
		{Bench: "c432", Seed: 1},
		{Bench: "no-such-bench"},
		{}, // no input at all
	}, ssta.BatchOptions{Workers: 2})
	if batch[0].Err != nil {
		t.Fatalf("healthy item failed: %v", batch[0].Err)
	}
	if batch[1].Err == nil || batch[2].Err == nil {
		t.Fatal("failing items did not report errors")
	}
}

// TestAnalyzeBatchConcurrentCallers hammers one flow (and one design) from
// several concurrent batches. Run with -race.
func TestAnalyzeBatchConcurrentCallers(t *testing.T) {
	flow, d := quadDesign(t)
	ref, err := d.AnalyzeOpt(ssta.FullCorrelation, ssta.AnalyzeOptions{Workers: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := flow.AnalyzeBatch([]ssta.BatchItem{
				{Design: d, Mode: ssta.FullCorrelation},
				{Design: d, Mode: ssta.GlobalOnly},
				{Bench: "c432", Seed: 1},
			}, ssta.BatchOptions{Workers: 3, ItemWorkers: 2})
			for _, r := range batch {
				if r.Err != nil {
					errCh <- r.Err
					return
				}
			}
			if got := batch[0].Delay.Mean(); math.Abs(got-ref.Delay.Mean()) > 1e-9 {
				errCh <- fmt.Errorf("batch delay mean %g != serial %g", got, ref.Delay.Mean())
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
