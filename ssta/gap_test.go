package ssta

import (
	"testing"
)

// buildTestModule extracts a small multiplier module with its original
// graph attached.
func buildTestModule(t *testing.T, width int) *Module {
	t.Helper()
	flow := DefaultFlow()
	mult, err := ArrayMultiplier(width)
	if err != nil {
		t.Fatal(err)
	}
	g, plan, err := flow.Graph(mult)
	if err != nil {
		t.Fatal(err)
	}
	model, err := flow.Extract(g, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModule("m", model, plan)
	if err != nil {
		t.Fatal(err)
	}
	mod.Orig = g
	return mod
}

func TestQuadDesignGapGeometry(t *testing.T) {
	flow := DefaultFlow()
	mod := buildTestModule(t, 4)
	d0, err := flow.QuadDesignGap("abut", mod, 0)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := flow.QuadDesignGap("spread", mod, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Width <= d0.Width || d3.Height <= d0.Height {
		t.Fatal("gap did not grow the die")
	}
	if _, err := flow.QuadDesignGap("bad", mod, -1); err == nil {
		t.Fatal("negative gap accepted")
	}
}

// TestGapReducesInterModuleCorrelationEffect is the E5 ablation: as modules
// move apart, the local-correlation contribution decays, so the proposed
// analysis converges toward the global-only baseline.
func TestGapReducesInterModuleCorrelationEffect(t *testing.T) {
	flow := DefaultFlow()
	mod := buildTestModule(t, 4)

	gapEffect := func(gap int) float64 {
		d, err := flow.QuadDesignGap("g", mod, gap)
		if err != nil {
			t.Fatal(err)
		}
		full, err := d.Analyze(FullCorrelation)
		if err != nil {
			t.Fatal(err)
		}
		glob, err := d.Analyze(GlobalOnly)
		if err != nil {
			t.Fatal(err)
		}
		// Effect size: relative std gap between the two modes.
		return (full.Delay.Std() - glob.Delay.Std()) / glob.Delay.Std()
	}

	abut := gapEffect(0)
	spread := gapEffect(12)
	if abut <= 0 {
		t.Fatalf("abutted effect %g should be positive", abut)
	}
	if spread >= abut {
		t.Fatalf("correlation effect should decay with distance: abut %g, spread %g", abut, spread)
	}
}

func TestGapDesignHasFillerGrids(t *testing.T) {
	flow := DefaultFlow()
	mod := buildTestModule(t, 4)
	d, err := flow.QuadDesignGap("g", mod, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.Filler == 0 {
		t.Fatal("spread design should produce filler grids (paper Fig. 4 heterogeneous partition)")
	}
	// Total grids = instance grids + filler.
	instGrids := 0
	for _, inst := range d.Instances {
		instGrids += inst.Module.NX * inst.Module.NY
	}
	if len(res.Partition.Centers) != instGrids+res.Partition.Filler {
		t.Fatal("partition bookkeeping inconsistent")
	}
}
