package ssta

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/timing"
)

// ParseNameList splits a comma-separated circuit list, trimming whitespace
// and dropping empty entries. The cmd harnesses share it for their
// -gen/-circuits flags; an empty result means no circuit was named.
func ParseNameList(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// BatchItem describes one analysis in a batch. Exactly one input must be
// set: a benchmark name to generate (Bench, with Seed), an explicit
// netlist (Circuit), a prebuilt timing graph (Graph), or a hierarchical
// design (Design). Flat items may additionally request cached timing-model
// extraction.
type BatchItem struct {
	// Name labels the result; defaults to the input's own name.
	Name string

	// Bench generates a topology-matched ISCAS85-like benchmark.
	Bench string
	// Seed is the generator seed for Bench items.
	Seed int64
	// Circuit analyzes an explicit netlist.
	Circuit *Circuit
	// Graph analyzes a prebuilt timing graph.
	Graph *Graph
	// Design runs a hierarchical analysis in the given Mode.
	Design *Design
	// Mode selects the correlation treatment for Design items.
	Mode Mode

	// Extract additionally runs (cached) timing-model extraction on the
	// flat graph of the item.
	Extract bool
	// ExtractOptions controls the extraction when Extract is set.
	ExtractOptions ExtractOptions
}

// BatchResult is the outcome of one BatchItem. Err is set when the item
// failed; the remaining fields are populated as far as the pipeline got.
type BatchResult struct {
	Name string
	// Graph is the flat timing graph that was analyzed (nil for Design
	// items; freshly built for Bench/Circuit items).
	Graph *Graph
	// Plan is the placement of a freshly built graph (Bench/Circuit items).
	Plan *Plan
	// Delay is the statistical circuit delay (all items).
	Delay *Form
	// Model is the extracted timing model when Extract was requested.
	Model *Model
	// Hier is the full hierarchical result for Design items.
	Hier *HierResult
	// Seq is the statistical setup/hold slack summary when the analyzed
	// graph (or stitched design) is sequential, computed under the default
	// clock (see timing.DefaultClockPeriodPS); nil for combinational items.
	Seq *SeqResult
	// Elapsed is the wall-clock time of this item.
	Elapsed time.Duration
	Err     error
}

// BatchOptions tunes the batch scheduler.
type BatchOptions struct {
	// Workers bounds how many items run concurrently (<=0: GOMAXPROCS).
	Workers int
	// ItemWorkers bounds the goroutines inside one hierarchical analysis
	// (<=0: 1, i.e. serial per item). Total concurrency is roughly
	// Workers x ItemWorkers; keep ItemWorkers at 1 for wide batches.
	ItemWorkers int
	// OnItemDone, when set, is invoked from the item's worker goroutine
	// right after its result (including Elapsed and Err) is final. The
	// serving layer uses it for per-item latency metrics; it must be safe
	// to call concurrently for distinct items.
	OnItemDone func(k int, r *BatchResult)
}

// AnalyzeBatch fans the items out across a bounded worker pool with the
// flow's shared extraction cache and the per-design prep caches. Results
// are returned in item order; per-item failures land in BatchResult.Err
// and never abort the rest of the batch. Items must not share a mutable
// Design with outside writers while the batch runs.
func (f *Flow) AnalyzeBatch(items []BatchItem, opt BatchOptions) []BatchResult {
	return f.AnalyzeBatchCtx(context.Background(), items, opt)
}

// AnalyzeBatchCtx is AnalyzeBatch with cooperative cancellation. Once ctx
// is done, items that have not started report ctx.Err() in their
// BatchResult.Err, in-flight items observe the cancellation between
// vertices (flat propagation) or pool tasks (hierarchical analysis), and
// already-completed items keep their results. The call itself still
// returns a result per item, never an error.
func (f *Flow) AnalyzeBatchCtx(ctx context.Context, items []BatchItem, opt BatchOptions) []BatchResult {
	results := make([]BatchResult, len(items))
	itemWorkers := opt.ItemWorkers
	if itemWorkers <= 0 {
		itemWorkers = 1
	}
	// ParallelFor only fails when a task errors; runItem reports all
	// failures — including cancellation and recovered panics — through
	// BatchResult.Err, so the error here is always nil and every index is
	// visited even after ctx fires.
	_ = timing.ParallelFor(len(items), opt.Workers, func(k int) error {
		results[k] = f.runItem(ctx, items[k], itemWorkers)
		if opt.OnItemDone != nil {
			opt.OnItemDone(k, &results[k])
		}
		return nil
	})
	return results
}

// AnalyzeBatch runs the batch on DefaultFlow.
func AnalyzeBatch(items []BatchItem, opt BatchOptions) []BatchResult {
	return DefaultFlow().AnalyzeBatch(items, opt)
}

// AnalyzeBatchCtx runs the batch on DefaultFlow with cancellation.
func AnalyzeBatchCtx(ctx context.Context, items []BatchItem, opt BatchOptions) []BatchResult {
	return DefaultFlow().AnalyzeBatchCtx(ctx, items, opt)
}

// validateItemInput enforces the BatchItem contract that exactly one input
// is set, returning an error naming every populated input on ambiguity.
func validateItemInput(item BatchItem) error {
	var set []string
	if item.Design != nil {
		set = append(set, "Design")
	}
	if item.Graph != nil {
		set = append(set, "Graph")
	}
	if item.Circuit != nil {
		set = append(set, "Circuit")
	}
	if item.Bench != "" {
		set = append(set, "Bench")
	}
	switch len(set) {
	case 0:
		return errors.New("ssta: batch item has no input (set Bench, Circuit, Graph or Design)")
	case 1:
		return nil
	default:
		return fmt.Errorf("ssta: batch item sets %d inputs (%s); exactly one of Bench, Circuit, Graph or Design must be set",
			len(set), strings.Join(set, ", "))
	}
}

func (f *Flow) runItem(ctx context.Context, item BatchItem, itemWorkers int) (res BatchResult) {
	start := time.Now()
	res = BatchResult{Name: item.Name}
	defer func() {
		// Panic isolation: one faulting item must not take down the batch
		// (or, in the serving layer, the process). ParallelFor converts
		// worker panics into a *timing.PanicError re-panicked on this
		// goroutine; anything else is a direct panic out of the item's own
		// serial code path.
		if r := recover(); r != nil {
			if pe, ok := r.(*timing.PanicError); ok {
				res.Err = fmt.Errorf("ssta: %s: %w", res.Name, pe)
			} else {
				res.Err = fmt.Errorf("ssta: %s: panic: %v\n%s", res.Name, r, debug.Stack())
			}
		}
		res.Elapsed = time.Since(start)
	}()

	if err := validateItemInput(item); err != nil {
		res.Err = err
		return res
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}

	switch {
	case item.Design != nil:
		if res.Name == "" {
			res.Name = item.Design.Name
		}
		hr, err := item.Design.AnalyzeCtx(ctx, item.Mode, AnalyzeOptions{Workers: itemWorkers})
		if err != nil {
			res.Err = err
			return res
		}
		res.Hier = hr
		res.Delay = hr.Delay
		res.Seq = hr.Sequential
		return res

	case item.Graph != nil:
		res.Graph = item.Graph

	case item.Circuit != nil:
		if res.Name == "" {
			res.Name = item.Circuit.Name
		}
		g, plan, err := f.Graph(item.Circuit)
		if err != nil {
			res.Err = err
			return res
		}
		res.Graph, res.Plan = g, plan

	case item.Bench != "":
		if res.Name == "" {
			res.Name = item.Bench
		}
		g, plan, err := f.BenchGraph(item.Bench, item.Seed)
		if err != nil {
			res.Err = err
			return res
		}
		res.Graph, res.Plan = g, plan
	}

	// MaxDelay folds the whole forward pass inside the graph's pooled
	// propagation arena, so repeated batch items against one graph reuse
	// the same flat storage and allocate only the returned form.
	delay, err := res.Graph.MaxDelayCtx(ctx)
	if err != nil {
		res.Err = fmt.Errorf("ssta: %s: %w", res.Name, err)
		return res
	}
	res.Delay = delay

	// Sequential graphs additionally report worst setup/hold slack under
	// the default clock; per-scenario clocks belong to the sweep surface.
	if res.Graph.Sequential() {
		seq, err := res.Graph.SequentialSlacks(ClockSpec{})
		if err != nil {
			res.Err = fmt.Errorf("ssta: %s: sequential slacks: %w", res.Name, err)
			return res
		}
		res.Seq = seq
	}

	if item.Extract {
		model, err := f.ExtractCtx(ctx, res.Graph, item.ExtractOptions)
		if err != nil {
			res.Err = fmt.Errorf("ssta: %s: extract: %w", res.Name, err)
			return res
		}
		res.Model = model
	}
	return res
}
