package ssta

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func sessionFormDiff(a, b *Form) float64 {
	rel := func(x, y float64) float64 {
		d := math.Abs(x - y)
		s := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		return d / s
	}
	d := rel(a.Nominal, b.Nominal)
	for i := range a.Glob {
		if r := rel(a.Glob[i], b.Glob[i]); r > d {
			d = r
		}
	}
	for i := range a.Loc {
		if r := rel(a.Loc[i], b.Loc[i]); r > d {
			d = r
		}
	}
	if r := rel(a.Rand, b.Rand); r > d {
		d = r
	}
	return d
}

// randomFlatEdit draws one applicable flat-session edit for a graph with
// the given shape. The same Edit is applied to the session and replayed on
// the reference clone, so both see identical mutations.
func randomFlatEdit(rng *rand.Rand, g *Graph) (Edit, bool) {
	liveEdge := func() int {
		for {
			ei := rng.Intn(len(g.Edges))
			if !g.Edges[ei].Removed {
				return ei
			}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Edit{Op: EditScaleDelay, Edge: liveEdge(), Scale: 0.5 + rng.Float64()*1.5}, true
	case 1:
		return Edit{Op: EditSetNominal, Edge: liveEdge(), Value: 10 + rng.Float64()*200}, true
	case 2:
		from, to := rng.Intn(g.NumVerts), rng.Intn(g.NumVerts)
		if from == to {
			return Edit{}, false
		}
		return Edit{Op: EditAddEdge, From: from, To: to, Value: 5 + rng.Float64()*100}, true
	default:
		return Edit{Op: EditRemoveEdge, Edge: liveEdge()}, true
	}
}

// replayFlatEdit applies one Edit to a reference graph through the timing
// edit API directly.
func replayFlatEdit(t *testing.T, g *Graph, e Edit) bool {
	t.Helper()
	switch e.Op {
	case EditScaleDelay:
		if err := g.ScaleEdgeDelay(e.Edge, e.Scale); err != nil {
			t.Fatal(err)
		}
	case EditSetNominal:
		if err := g.SetEdgeNominal(e.Edge, e.Value); err != nil {
			t.Fatal(err)
		}
	case EditAddEdge:
		if _, err := g.AddEdgeLive(e.From, e.To, g.Space.Const(e.Value), nil, 0); err != nil {
			return false // cycle: the session rejects it identically
		}
	case EditRemoveEdge:
		if err := g.RemoveEdge(e.Edge); err != nil {
			t.Fatal(err)
		}
	}
	return true
}

// TestGraphSessionRandomizedGolden is the flat randomized edit-sequence
// golden test: batches of random edits applied through Session.Apply must
// match a from-scratch full analysis of an identically edited graph at
// 1e-9, and the incremental engine must actually be incremental.
func TestGraphSessionRandomizedGolden(t *testing.T) {
	flow := DefaultFlow()
	for _, bench := range []string{"c432", "c880"} {
		t.Run(bench, func(t *testing.T) {
			base, _, err := flow.BenchGraph(bench, 1)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := flow.NewGraphSession(context.Background(), base)
			if err != nil {
				t.Fatal(err)
			}
			// The session clones; the base graph stays pristine for replay.
			ref := base.Clone()
			first, err := ref.MaxDelay()
			if err != nil {
				t.Fatal(err)
			}
			if d := sessionFormDiff(sess.Delay(), first); d > 1e-12 {
				t.Fatalf("initial session delay differs by %g", d)
			}
			rng := rand.New(rand.NewSource(11))
			fullRepropags := 0
			for round := 0; round < 12; round++ {
				var batch []Edit
				for len(batch) < 3 {
					e, ok := randomFlatEdit(rng, ref)
					if !ok {
						continue
					}
					if !replayFlatEdit(t, ref, e) {
						continue // cycle-rejected on the reference
					}
					batch = append(batch, e)
				}
				rep, err := sess.Apply(context.Background(), batch)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Applied != len(batch) {
					t.Fatalf("round %d: applied %d of %d", round, rep.Applied, len(batch))
				}
				if rep.FullReprop {
					fullRepropags++
				}
				want, err := ref.MaxDelay()
				if err != nil {
					t.Fatal(err)
				}
				if d := sessionFormDiff(rep.Delay, want); d > 1e-9 {
					t.Fatalf("round %d: session delay differs from replayed full analysis by %g", round, d)
				}
				if rep.Recomputed > rep.TotalVerts {
					t.Fatalf("round %d: recomputed %d > %d vertices", round, rep.Recomputed, rep.TotalVerts)
				}
			}
			if fullRepropags == 12 {
				t.Fatal("every batch fell back to full re-propagation — nothing incremental about it")
			}
		})
	}
}

// TestGraphSessionRejectsBadEdit checks error surfacing and that a failed
// batch leaves the session consistent (earlier edits applied, usable).
func TestGraphSessionRejectsBadEdit(t *testing.T) {
	flow := DefaultFlow()
	base, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := flow.NewGraphSession(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	ref := base.Clone()
	if err := ref.ScaleEdgeDelay(3, 2); err != nil {
		t.Fatal(err)
	}
	partial, err := sess.Apply(context.Background(), []Edit{
		{Op: EditScaleDelay, Edge: 3, Scale: 2},
		{Op: EditScaleDelay, Edge: len(base.Edges) + 7, Scale: 2}, // out of range
	})
	if err == nil {
		t.Fatal("out-of-range edit accepted")
	}
	// The report rides along with the error so callers can see the partial
	// application — resending the batch would double-apply edit #0.
	if partial == nil || partial.Applied != 1 {
		t.Fatalf("failed batch reported %+v, want Applied=1", partial)
	}
	// Hierarchical-only ops must be rejected on flat sessions.
	if _, err := sess.Apply(context.Background(), []Edit{{Op: EditSetNetDelay, Net: 0, Value: 1}}); err == nil {
		t.Fatal("net edit accepted on a flat session")
	}
	if _, err := sess.Apply(context.Background(), []Edit{{Op: EditSwapModule, Instance: "A"}}); err == nil {
		t.Fatal("module swap accepted on a flat session")
	}
	// The session is still alive and its state reflects edit #0 of the
	// failed batch (partial application is documented).
	rep, err := sess.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	if d := sessionFormDiff(rep.Delay, want); d > 1e-9 {
		t.Fatalf("session state inconsistent after failed batch (diff %g)", d)
	}
}

// quadFixture builds a quad design over an extracted benchmark module plus
// a same-footprint replacement module.
func quadFixture(t *testing.T, flow *Flow, bench string) (*Design, *Module, *Module) {
	t.Helper()
	mkMod := func(seed int64) *Module {
		g, plan, err := flow.BenchGraph(bench, seed)
		if err != nil {
			t.Fatal(err)
		}
		model, err := flow.Extract(g, ExtractOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mod, err := NewModule(bench, model, plan)
		if err != nil {
			t.Fatal(err)
		}
		return mod
	}
	mod, alt := mkMod(1), mkMod(2)
	d, err := flow.QuadDesign("quad", mod)
	if err != nil {
		t.Fatal(err)
	}
	return d, mod, alt
}

// TestDesignSessionRandomizedGolden drives a hierarchical session through
// random module swaps and net-delay edits and checks every state against a
// from-scratch Analyze of an equivalently mutated design copy.
func TestDesignSessionRandomizedGolden(t *testing.T) {
	flow := DefaultFlow()
	d, mod, alt := quadFixture(t, flow, "c432")
	for _, mode := range []Mode{FullCorrelation, GlobalOnly} {
		sess, err := flow.NewDesignSession(context.Background(), d, mode, AnalyzeOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Mirror of the session's design state for the reference analysis.
		mirror := d.CopyStructure()
		rng := rand.New(rand.NewSource(3))
		names := []string{"A", "B", "C", "D"}
		mods := []*Module{mod, alt}
		for round := 0; round < 6; round++ {
			var e Edit
			if rng.Intn(2) == 0 {
				inst := names[rng.Intn(len(names))]
				m := mods[rng.Intn(2)]
				e = Edit{Op: EditSwapModule, Instance: inst, Module: m}
				for i, in := range mirror.Instances {
					if in.Name == inst {
						mirror.Instances[i].Module = m
					}
				}
			} else {
				net := rng.Intn(len(mirror.Nets))
				ps := rng.Float64() * 40
				e = Edit{Op: EditSetNetDelay, Net: net, Value: ps}
				mirror.Nets[net].Delay = ps
			}
			rep, err := sess.Apply(context.Background(), []Edit{e})
			if err != nil {
				t.Fatal(err)
			}
			res, err := mirror.CopyStructure().Analyze(mode)
			if err != nil {
				t.Fatal(err)
			}
			if diff := sessionFormDiff(rep.Delay, res.Delay); diff > 1e-9 {
				t.Fatalf("mode %v round %d (%v): session differs from Analyze by %g",
					mode, round, e.Op, diff)
			}
			if e.Op == EditSwapModule && !rep.FullReprop {
				t.Fatal("module swap did not report a full re-propagation")
			}
			if e.Op == EditSetNetDelay && rep.FullReprop {
				t.Fatal("net edit needlessly re-propagated everything")
			}
		}
		// The original design must be untouched throughout.
		if d.Instances[1].Module != mod {
			t.Fatal("session mutated the caller's design")
		}
	}
}

// TestSessionRecoversInterruptedRefresh reproduces the interrupted-refresh
// hazard: a module swap committed and syncTop already replaced the graph,
// but the incremental rebuild failed (a client timeout mid-propagation)
// before s.inc was rebuilt, leaving it bound to the discarded graph. The
// next Apply must detect the identity mismatch and rebuild instead of
// serving the old graph's (pre-swap) delays.
func TestSessionRecoversInterruptedRefresh(t *testing.T) {
	flow := DefaultFlow()
	d, _, alt := quadFixture(t, flow, "c432")
	sess, err := flow.NewDesignSession(context.Background(), d, FullCorrelation, AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the torn state directly: swap + syncTop without the rebuild.
	if err := sess.hs.SwapModule(context.Background(), "B", alt); err != nil {
		t.Fatal(err)
	}
	if err := sess.syncTop(); err != nil {
		t.Fatal(err)
	}
	if sess.inc.Graph() == sess.graph {
		t.Fatal("fixture did not detach the incremental state from the live graph")
	}

	mirror := d.CopyStructure()
	for i := range mirror.Instances {
		if mirror.Instances[i].Name == "B" {
			mirror.Instances[i].Module = alt
		}
	}
	mirror.Nets[0].Delay = 17
	rep, err := sess.Apply(context.Background(), []Edit{{Op: EditSetNetDelay, Net: 0, Value: 17}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullReprop {
		t.Fatal("recovery from a detached incremental state must rebuild fully")
	}
	res, err := mirror.CopyStructure().Analyze(FullCorrelation)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sessionFormDiff(rep.Delay, res.Delay); diff > 1e-9 {
		t.Fatalf("post-recovery delay differs from from-scratch Analyze by %g", diff)
	}

	// The other torn state: the rebuild dropped the old state and then
	// failed, leaving no incremental state at all.
	sess.inc = nil
	rep, err = sess.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullReprop {
		t.Fatal("recovery from a nil incremental state must rebuild fully")
	}
	if diff := sessionFormDiff(rep.Delay, res.Delay); diff > 1e-9 {
		t.Fatalf("post-nil-recovery delay differs from from-scratch Analyze by %g", diff)
	}
}

// TestSessionReanalysisFailureIsTyped checks that a failed post-edit
// re-analysis surfaces as a ReanalysisError (unwrapping to the underlying
// cancellation) and that the session recovers on the next Apply.
func TestSessionReanalysisFailureIsTyped(t *testing.T) {
	flow := DefaultFlow()
	base, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := flow.NewGraphSession(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.Apply(ctx, []Edit{{Op: EditScaleDelay, Edge: 0, Scale: 2}})
	if err == nil {
		t.Fatal("apply under a cancelled context succeeded")
	}
	var re *ReanalysisError
	if !errors.As(err, &re) {
		t.Fatalf("want ReanalysisError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not visible through the wrapper: %v", err)
	}
	// The edit stayed applied (documented partial application); recovery
	// rebuilds and matches a reference with the same edit.
	ref := base.Clone()
	if err := ref.ScaleEdgeDelay(0, 2); err != nil {
		t.Fatal(err)
	}
	want, err := ref.MaxDelay()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := sessionFormDiff(rep.Delay, want); d > 1e-9 {
		t.Fatalf("post-recovery delay differs by %g", d)
	}

	// Combined failure: a validation error in the batch plus a cancelled
	// re-analysis of the applied prefix. The cancellation classification
	// must survive alongside the edit error, and the report must still
	// disclose the partial application.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	rep, err = sess.Apply(ctx2, []Edit{
		{Op: EditScaleDelay, Edge: 1, Scale: 1.5},
		{Op: EditScaleDelay, Edge: len(base.Edges) + 3, Scale: 2}, // out of range
	})
	if err == nil {
		t.Fatal("combined-failure batch succeeded")
	}
	if !errors.As(err, &re) {
		t.Fatalf("combined failure lost the ReanalysisError: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("combined failure lost the cancellation: %v", err)
	}
	if rep == nil || rep.Applied != 1 {
		t.Fatalf("combined failure reported %+v, want Applied=1", rep)
	}
}

// TestSessionsConcurrent exercises the race surface: distinct sessions in
// parallel (sharing the flow and extraction cache) plus concurrent edit
// batches against one shared session.
func TestSessionsConcurrent(t *testing.T) {
	flow := DefaultFlow()
	base, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := flow.NewGraphSession(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	d, _, alt := quadFixture(t, flow, "c432")

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Private flat sessions, each editing its own clone.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := flow.NewGraphSession(context.Background(), base)
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < 5; k++ {
				if _, err := s.Apply(context.Background(), []Edit{
					{Op: EditScaleDelay, Edge: (w*31 + k) % len(base.Edges), Scale: 1.1},
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Concurrent batches against the shared session (serialized inside).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if _, err := shared.Apply(context.Background(), []Edit{
					{Op: EditScaleDelay, Edge: (w*17 + k) % len(base.Edges), Scale: 1.05},
				}); err != nil {
					errs <- err
					return
				}
				shared.Info()
			}
		}(w)
	}
	// Two hierarchical sessions swapping modules concurrently.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := flow.NewDesignSession(context.Background(), d, FullCorrelation, AnalyzeOptions{Workers: 1})
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Apply(context.Background(), []Edit{
				{Op: EditSwapModule, Instance: "C", Module: alt},
				{Op: EditSetNetDelay, Net: 0, Value: 12},
			}); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if shared.Delay() == nil {
		t.Fatal("shared session lost its delay")
	}
}
