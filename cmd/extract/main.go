// Command extract runs statistical timing-model extraction on a
// combinational circuit, prints the compression statistics, and optionally
// writes the model to JSON — the artifact an IP vendor would ship instead
// of the netlist.
//
// Usage:
//
//	go run ./cmd/extract -gen c1908 [-delta 0.05] [-o model.json]
//	go run ./cmd/extract -bench my.bench -o model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/ssta"
)

func main() {
	benchFile := flag.String("bench", "", "path to a .bench netlist")
	gen := flag.String("gen", "", "ISCAS85 benchmark name to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	delta := flag.Float64("delta", 0.05, "criticality threshold (negative: merges only)")
	out := flag.String("o", "", "write the model JSON to this path")
	noProtect := flag.Bool("no-path-protection", false, "disable dominant-path protection (ablation)")
	flag.Parse()

	flow := ssta.DefaultFlow()
	var (
		g    *ssta.Graph
		name string
		err  error
	)
	switch {
	case *benchFile != "":
		f, ferr := os.Open(*benchFile)
		fatal(ferr)
		defer f.Close()
		name = *benchFile
		g, _, err = flow.LoadBench(name, f)
	case *gen != "":
		name = *gen
		g, _, err = flow.BenchGraph(name, *seed)
	default:
		fmt.Fprintln(os.Stderr, "select an input: -bench or -gen")
		os.Exit(2)
	}
	fatal(err)

	model, err := flow.Extract(g, ssta.ExtractOptions{
		Delta:                 *delta,
		DisablePathProtection: *noProtect,
	})
	fatal(err)
	st := model.Stats
	fmt.Printf("%s: Eo=%d Vo=%d -> Em=%d Vm=%d (pe=%.0f%%, pv=%.0f%%)\n",
		name, st.EdgesOrig, st.VertsOrig, st.EdgesModel, st.VertsModel, 100*st.PE(), 100*st.PV())
	fmt.Printf("criticality filter removed %d edges (%d kept by dominant-path protection); extraction took %v\n",
		st.RemovedEdges, st.ProtectedKept, st.Duration)

	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		fatal(model.WriteJSON(f))
		fmt.Printf("model written to %s\n", *out)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
