// Command fig7 regenerates Fig. 7 of the paper: the delay CDF of a
// hierarchical design built from four c6288 modules (16x16 multipliers)
// placed 2x2 in abutment with cross-connected columns, comparing
//
//   - Monte Carlo simulation of the flattened netlist (ground truth),
//   - the proposed hierarchical analysis with independent-variable
//     replacement (full local+global correlation), and
//   - the baseline keeping only global-variation correlation.
//
// It prints the three CDF series over normalized delay (as in the paper's
// figure), the distribution moments, KS distances against Monte Carlo, and
// the analytic-vs-MC runtime ratio.
//
// Usage:
//
//	go run ./cmd/fig7 [-samples 10000] [-seed 1] [-points 21] [-module c6288]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/stats"
	"repro/ssta"
)

func main() {
	samples := flag.Int("samples", 10000, "Monte Carlo iterations (paper: 10,000)")
	seed := flag.Int64("seed", 1, "generator and Monte Carlo seed")
	points := flag.Int("points", 21, "CDF sample points")
	module := flag.String("module", "mult16",
		"module: multN for a structural NxN array multiplier (c6288 is a 16x16 multiplier), or an ISCAS85 name for the topology-matched stand-in")
	gap := flag.Int("gap", 0, "grid pitches of separation between modules (0 = abutment, as in the paper)")
	workers := flag.Int("workers", 0, "worker goroutines (0: all cores)")
	flag.Parse()

	flow := ssta.DefaultFlow()

	fmt.Printf("Fig. 7: hierarchical timing analysis of 4x %s in 2x2 abutment\n\n", *module)
	var (
		g    *ssta.Graph
		plan *ssta.Plan
		err  error
	)
	if w, ok := multWidth(*module); ok {
		ckt, merr := ssta.ArrayMultiplier(w)
		fatal(merr)
		g, plan, err = flow.Graph(ckt)
	} else {
		g, plan, err = flow.BenchGraph(*module, *seed)
	}
	fatal(err)
	extractStart := time.Now()
	model, err := flow.Extract(g, ssta.ExtractOptions{Workers: *workers})
	fatal(err)
	fmt.Printf("module model: %d->%d edges, %d->%d vertices (extraction %.2fs)\n",
		model.Stats.EdgesOrig, model.Stats.EdgesModel,
		model.Stats.VertsOrig, model.Stats.VertsModel, time.Since(extractStart).Seconds())

	mod, err := ssta.NewModule(*module, model, plan)
	fatal(err)
	mod.Orig = g
	design, err := flow.QuadDesignGap("quad-"+*module, mod, *gap)
	fatal(err)
	if *gap > 0 {
		fmt.Printf("modules separated by %d grid pitches (ablation; paper uses abutment)\n", *gap)
	}

	// Proposed method: hierarchical analysis with variable replacement.
	full, err := design.Analyze(ssta.FullCorrelation)
	fatal(err)
	// Baseline: only global-variation correlation between modules.
	glob, err := design.Analyze(ssta.GlobalOnly)
	fatal(err)

	// Ground truth: Monte Carlo on the flattened netlist.
	flat, _, err := design.Flatten()
	fatal(err)
	mcStart := time.Now()
	samplesV, err := ssta.MaxDelaySamples(flat, ssta.MCConfig{Samples: *samples, Seed: *seed, Workers: *workers})
	fatal(err)
	mcTime := time.Since(mcStart)
	ecdf, err := stats.NewECDF(samplesV)
	fatal(err)
	sum := stats.Summarize(samplesV)

	// Diagnostic: flat analytic SSTA on the flattened netlist separates the
	// Clark-propagation bias (shared with the hierarchical result) from the
	// model-extraction error (hierarchical only).
	flatDelay, err := flat.MaxDelay()
	fatal(err)

	fmt.Printf("\n%-38s %10s %9s %8s\n", "method", "mean(ps)", "std(ps)", "KS")
	fmt.Printf("%-38s %10.1f %9.2f %8s\n", "Monte Carlo (flattened netlist)", sum.Mean, sum.Std, "-")
	fmt.Printf("%-38s %10.1f %9.2f %8.4f\n", "proposed method", full.Delay.Mean(), full.Delay.Std(), ecdf.KSAgainst(full.Delay.CDF))
	fmt.Printf("%-38s %10.1f %9.2f %8.4f\n", "only global-variation correlation", glob.Delay.Mean(), glob.Delay.Std(), ecdf.KSAgainst(glob.Delay.CDF))
	fmt.Printf("%-38s %10.1f %9.2f %8.4f\n", "flat SSTA (diagnostic)", flatDelay.Mean(), flatDelay.Std(), ecdf.KSAgainst(flatDelay.CDF))

	// CDF series over normalized delay, paper style: the x axis spans the
	// plotted delay window normalized to [0, 1].
	lo := ecdf.Quantile(0.0005)
	hi := ecdf.Quantile(0.9995)
	span := hi - lo
	fmt.Printf("\nCDF over normalized delay (window %.1f..%.1f ps):\n", lo, hi)
	fmt.Printf("%-10s %12s %12s %12s\n", "norm", "MonteCarlo", "proposed", "globalOnly")
	for k := 0; k < *points; k++ {
		x := lo + span*float64(k)/float64(*points-1)
		fmt.Printf("%-10.3f %12.4f %12.4f %12.4f\n",
			float64(k)/float64(*points-1), ecdf.Eval(x), full.Delay.CDF(x), glob.Delay.CDF(x))
	}

	// Runtime comparison (paper: three orders of magnitude, single-threaded
	// C++). Our Monte Carlo fans out over all cores, so the CPU-time ratio
	// is the comparable figure; wall-clock is reported alongside.
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("\nhierarchical analysis: %v  |  Monte Carlo (%d iters, %d workers): %v wall\n",
		full.Elapsed, *samples, nw, mcTime)
	fmt.Printf("speedup: %.0fx wall-clock, ~%.0fx single-thread equivalent\n",
		mcTime.Seconds()/full.Elapsed.Seconds(),
		mcTime.Seconds()*float64(nw)/full.Elapsed.Seconds())
}

// multWidth parses "multN" module names.
func multWidth(name string) (int, bool) {
	var w int
	if n, err := fmt.Sscanf(name, "mult%d", &w); err == nil && n == 1 && w > 0 {
		return w, true
	}
	return 0, false
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
