// Command report prints a statistical timing report for a combinational
// circuit: the circuit delay distribution, the most critical paths (with
// per-path delay distributions and criticalities), and the statistically
// failing endpoints under a required time — the SSTA analogue of a timing
// tool's report_timing.
//
// Multiple circuits (comma-separated -gen) are analyzed concurrently
// through ssta.AnalyzeBatch and reported in order.
//
// Usage:
//
//	go run ./cmd/report -gen c880 [-paths 5] [-treq 1200]
//	go run ./cmd/report -gen c432,c880,c1908 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/ssta"
)

func main() {
	benchFile := flag.String("bench", "", "path to a .bench netlist")
	gen := flag.String("gen", "", "ISCAS85 benchmark name(s) to generate, comma-separated")
	seed := flag.Int64("seed", 1, "generator seed")
	nPaths := flag.Int("paths", 5, "number of critical paths to report")
	treq := flag.Float64("treq", 0, "required time (ps); 0 = statistical mean + 1 sigma")
	workers := flag.Int("workers", 0, "concurrent analyses in a batch (0: all cores)")
	flag.Parse()

	flow := ssta.DefaultFlow()
	var items []ssta.BatchItem
	switch {
	case *benchFile != "":
		f, ferr := os.Open(*benchFile)
		fatal(ferr)
		defer f.Close()
		c, cerr := ssta.ParseBench(*benchFile, f)
		fatal(cerr)
		items = append(items, ssta.BatchItem{Name: *benchFile, Circuit: c})
	case *gen != "":
		for _, name := range ssta.ParseNameList(*gen) {
			items = append(items, ssta.BatchItem{Bench: name, Seed: *seed})
		}
	default:
		fmt.Fprintln(os.Stderr, "select an input: -bench or -gen")
		os.Exit(2)
	}
	if len(items) == 0 {
		fmt.Fprintln(os.Stderr, "no circuits named; select an input: -bench or -gen")
		os.Exit(2)
	}

	results := flow.AnalyzeBatch(items, ssta.BatchOptions{Workers: *workers})
	for i, r := range results {
		fatal(r.Err)
		if i > 0 {
			fmt.Println()
		}
		report(r.Name, r.Graph, r.Delay, *nPaths, *treq)
	}
}

func report(name string, g *ssta.Graph, delay *ssta.Form, nPaths int, treq float64) {
	fmt.Printf("timing report for %s (%d vertices, %d edges)\n", name, g.NumVerts, len(g.Edges))
	fmt.Printf("circuit delay: mean %.2f ps, sigma %.2f ps, 99.87%% point %.2f ps\n\n",
		delay.Mean(), delay.Std(), delay.Quantile(0.99865))

	paths, err := g.TopPaths(nPaths)
	fatal(err)
	fmt.Printf("top %d statistically critical paths:\n", len(paths))
	for i, p := range paths {
		fmt.Printf("%2d. %-10s -> %-10s mean %8.2f ps  sigma %6.2f ps  crit %.3f  (%d stages)\n",
			i+1, g.InputNames[p.Input], g.OutputNames[p.Output],
			p.Delay.Mean(), p.Delay.Std(), p.Criticality, len(p.Edges))
	}

	req := treq
	if req <= 0 {
		req = delay.Mean() + delay.Std()
	}
	slacks, err := g.Slacks(req)
	fatal(err)
	type endpoint struct {
		name string
		prob float64
		mean float64
	}
	var failing []endpoint
	for k, o := range g.Outputs {
		s := slacks[o]
		if s == nil {
			continue
		}
		// Probability the endpoint violates the constraint.
		pFail := s.CDF(0)
		if pFail > 1e-4 {
			failing = append(failing, endpoint{g.OutputNames[k], pFail, s.Mean()})
		}
	}
	sort.Slice(failing, func(a, b int) bool { return failing[a].prob > failing[b].prob })
	fmt.Printf("\nendpoints at risk for Treq = %.1f ps: %d of %d\n", req, len(failing), len(g.Outputs))
	for i, e := range failing {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(failing)-10)
			break
		}
		fmt.Printf("  %-12s P(violate) = %6.2f%%  slack mean %+.2f ps\n",
			e.name, 100*e.prob, e.mean)
	}
	if len(failing) == 0 {
		fmt.Println("  " + strings.Repeat("-", 3) + " all endpoints statistically safe")
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
