// Command table1 regenerates Table I of the paper: statistical timing-model
// extraction on the ten ISCAS85 benchmarks, reporting original and model
// sizes, the compression ratios pe/pv, the maximum mean and std errors of
// all input-output delays against Monte Carlo on the original netlist, and
// the extraction runtime.
//
// Usage:
//
//	go run ./cmd/table1 [-samples 10000] [-delta 0.05] [-seed 1] [-circuits c432,c499,...]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/mc"
	"repro/ssta"
)

func main() {
	samples := flag.Int("samples", 10000, "Monte Carlo iterations (paper: 10,000)")
	delta := flag.Float64("delta", 0.05, "criticality threshold (paper: 0.05)")
	seed := flag.Int64("seed", 1, "generator and Monte Carlo seed")
	circuits := flag.String("circuits", "", "comma-separated subset (default: all ten)")
	workers := flag.Int("workers", 0, "worker goroutines (0: all cores)")
	flag.Parse()

	names := make([]string, 0, len(ssta.ISCAS85Specs))
	if *circuits != "" {
		names = ssta.ParseNameList(*circuits)
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "-circuits named no circuits")
			os.Exit(2)
		}
	} else {
		for _, s := range ssta.ISCAS85Specs {
			names = append(names, s.Name)
		}
	}

	flow := ssta.DefaultFlow()
	fmt.Println("Table I: results of timing model extraction")
	fmt.Printf("(delta=%.2g, %d MC iterations, seed %d; topology-matched ISCAS85-like workloads)\n\n", *delta, *samples, *seed)
	fmt.Printf("%-8s %6s %6s %6s %6s %5s %5s %7s %7s %9s\n",
		"Circuit", "Eo", "Vo", "Em", "Vm", "pe", "pv", "merr", "verr", "T(s)")

	// Graph generation and extraction fan out across circuits through the
	// batch API with the flow's shared extraction cache; the Monte Carlo
	// accuracy columns run per circuit afterwards (parallel internally).
	// -workers is spent at one level only: across circuits for a sweep,
	// inside the extraction for a single circuit.
	innerWorkers := 1
	if len(names) == 1 {
		innerWorkers = *workers
	}
	items := make([]ssta.BatchItem, len(names))
	for i, name := range names {
		items[i] = ssta.BatchItem{
			Bench: name, Seed: *seed,
			Extract:        true,
			ExtractOptions: ssta.ExtractOptions{Delta: *delta, Workers: innerWorkers},
		}
	}
	results := flow.AnalyzeBatch(items, ssta.BatchOptions{Workers: *workers})

	var sumPE, sumPV, sumMerr, sumVerr float64
	count := 0
	for _, r := range results {
		name := r.Name
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, r.Err)
			os.Exit(1)
		}
		g, model := r.Graph, r.Model
		merr, verr, err := modelErrors(g, model, mc.Config{Samples: *samples, Seed: *seed, Workers: *workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: monte carlo: %v\n", name, err)
			os.Exit(1)
		}
		st := model.Stats
		fmt.Printf("%-8s %6d %6d %6d %6d %4.0f%% %4.0f%% %6.2f%% %6.2f%% %9.2f\n",
			name, st.EdgesOrig, st.VertsOrig, st.EdgesModel, st.VertsModel,
			100*st.PE(), 100*st.PV(), 100*merr, 100*verr, st.Duration.Seconds())
		sumPE += st.PE()
		sumPV += st.PV()
		sumMerr += merr
		sumVerr += verr
		count++
	}
	if count > 1 {
		fmt.Printf("%-8s %6s %6s %6s %6s %4.0f%% %4.0f%% %6.2f%% %6.2f%%\n",
			"average", "", "", "", "",
			100*sumPE/float64(count), 100*sumPV/float64(count),
			100*sumMerr/float64(count), 100*sumVerr/float64(count))
	}
}

// modelErrors computes the paper's merr/verr: the maximum relative error of
// the model's analytic input-output delay means/stds against Monte Carlo on
// the original netlist.
func modelErrors(orig *ssta.Graph, model *ssta.Model, cfg mc.Config) (merr, verr float64, err error) {
	ref, err := mc.AllPairsStats(orig, cfg)
	if err != nil {
		return 0, 0, err
	}
	ap, err := model.Graph.AllPairsDelays(cfg.Workers)
	if err != nil {
		return 0, 0, err
	}
	for i := range ap.M {
		for j, f := range ap.M[i] {
			if f == nil || !ref.Reachable[i][j] {
				continue
			}
			if m := math.Abs(f.Mean()-ref.Mean[i][j]) / ref.Mean[i][j]; m > merr {
				merr = m
			}
			if ref.Std[i][j] > 0 {
				if v := math.Abs(f.Std()-ref.Std[i][j]) / ref.Std[i][j]; v > verr {
					verr = v
				}
			}
		}
	}
	return merr, verr, nil
}
