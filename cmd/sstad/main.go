// Command sstad is the long-running statistical static timing analysis
// service: the ssta batch/cache engine behind an HTTP/JSON API. It accepts
// generated benchmarks, inline .bench netlists, array multipliers and
// hierarchical quad designs, runs them on a bounded job queue with
// per-request deadlines, and exposes health and metrics endpoints.
//
// Usage:
//
//	go run ./cmd/sstad -addr :8080 -concurrency 2 -cache-entries 256
//
// Distributed serving (one binary, three roles):
//
//	sstad -role worker -addr :8081 -rpc-listen :9091
//	sstad -role worker -addr :8082 -rpc-listen :9092
//	sstad -role coordinator -addr :8080 -nodes localhost:9091,localhost:9092
//
// The coordinator answers the public API and shards sweep and micro-batch
// executions across its worker pool, with consistent-hash session affinity
// and automatic local fallback when no worker is healthy.
//
// Endpoints (see internal/server for the wire schema):
//
//	POST /v1/analyze             synchronous batch analysis
//	POST /v1/sweep               MCMM multi-scenario sweep with shared prep
//	POST /v1/jobs                asynchronous submit; GET/DELETE /v1/jobs/{id}
//	POST /v1/sessions            create an incremental timing session
//	POST /v1/sessions/{id}/edits apply an edit batch, re-analyzed incrementally
//	GET/DELETE /v1/sessions/{id} inspect / drop a session
//	GET  /healthz                liveness probe
//	GET  /metrics                Prometheus text metrics
//
// Example:
//
//	curl -s localhost:8080/v1/analyze -d '{"items":[{"bench":"c432","seed":1}]}'
//	curl -s localhost:8080/v1/analyze -d '{"items":[{"bench":"c432","seed":1,"clocked":true}]}'
//	curl -s localhost:8080/v1/sweep -d '{"bench":"c432","seed":1,
//	    "scenarios":[{"name":"unit"},{"name":"hot","derate":1.15}]}'
//	curl -s localhost:8080/v1/sweep -d '{"bench":"c432","seed":1,"clocked":true,
//	    "scenarios":[{"name":"fast","clock_period_ps":420,"clock_jitter_ps":12}]}'
//	curl -s localhost:8080/v1/sessions -d '{"bench":"c432","seed":1}'
//	curl -s localhost:8080/v1/sessions/sess-1/edits \
//	    -d '{"edits":[{"op":"scale_delay","edge":5,"scale":1.2}]}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/store"
	"repro/ssta"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 2, "analyses running at once (sync + jobs)")
	workers := flag.Int("workers", 1, "default per-batch item workers when the request sets none")
	queueDepth := flag.Int("queue", 64, "async job queue depth")
	jobWorkers := flag.Int("job-workers", 1, "goroutines draining the job queue")
	cacheEntries := flag.Int("cache-entries", 256, "extraction-cache entry cap (0: unbounded)")
	cacheCost := flag.Int64("cache-bytes", 0, "extraction-cache cost budget in bytes (0: unbounded)")
	graphEntries := flag.Int("graph-cache-entries", 64, "built-graph cache entry cap")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "upper clamp on client-requested deadlines")
	maxItems := flag.Int("max-items", 256, "maximum items per request")
	maxSessions := flag.Int("max-sessions", 64, "maximum live timing sessions")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle timing sessions are evicted after this")
	scenarios := flag.String("scenarios", "", "default MCMM scenario set for /v1/sweep requests that name none: JSON array (inline or @file)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch gathering window for compatible analyze/sweep requests (0: batching off; coalescing of identical requests is always on)")
	batchMax := flag.Int("batch-max", 8, "micro-batch size that flushes a gathering batch before its window expires")
	storeDir := flag.String("store-dir", "", "durable-state directory: sessions and extracted models are checkpointed here and restored at boot (empty: in-memory only)")
	storeFlush := flag.Duration("store-flush-interval", time.Second, "write-behind checkpoint flush interval")
	storeSync := flag.Bool("store-sync", false, "fsync durable-state writes (slower, survives power loss)")
	role := flag.String("role", "standalone", "serving role: standalone, coordinator (shards sweeps across -nodes) or worker (serves cluster RPC on -rpc-listen)")
	nodes := flag.String("nodes", "", "coordinator only: comma-separated worker RPC addresses (host:port,...)")
	rpcListen := flag.String("rpc-listen", ":9090", "worker only: cluster RPC listen address")
	flag.Parse()

	// Decode and validate the default scenario set at startup so a bad
	// operator config fails the boot, not the first sweep request. The set
	// may carry module swaps; those are materialized per request.
	var defaultScens []server.SweepScenarioSpec
	if *scenarios != "" {
		fail := func(err error) {
			fmt.Fprintf(os.Stderr, "sstad: -scenarios: %v\n", err)
			os.Exit(2)
		}
		raw, err := ssta.ScenarioFlagBytes(*scenarios)
		if err != nil {
			fail(err)
		}
		if err := json.Unmarshal(raw, &defaultScens); err != nil {
			fail(err)
		}
		for _, sp := range defaultScens {
			sc := sp.Scenario()
			if err := sc.Validate(); err != nil {
				fail(err)
			}
		}
	}

	var backend store.Backend
	if *storeDir != "" {
		fs, err := store.NewFS(*storeDir, *storeSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sstad: -store-dir: %v\n", err)
			os.Exit(2)
		}
		backend = fs
	}

	// Cluster topology. One binary serves all three roles: a coordinator
	// answers the public API and shards sweep/batch executions across its
	// worker pool; a worker additionally listens for the coordinator's
	// framed RPC; standalone is the default single-process mode.
	var pool *cluster.Pool
	switch *role {
	case "standalone", "worker":
		if *nodes != "" {
			fmt.Fprintf(os.Stderr, "sstad: -nodes requires -role coordinator\n")
			os.Exit(2)
		}
	case "coordinator":
		addrs := strings.Split(*nodes, ",")
		var clean []string
		for _, a := range addrs {
			if a = strings.TrimSpace(a); a != "" {
				clean = append(clean, a)
			}
		}
		if len(clean) == 0 {
			fmt.Fprintf(os.Stderr, "sstad: -role coordinator needs at least one -nodes address\n")
			os.Exit(2)
		}
		pool = cluster.NewPool(cluster.PoolConfig{Addrs: clean})
	default:
		fmt.Fprintf(os.Stderr, "sstad: unknown -role %q (standalone, coordinator or worker)\n", *role)
		os.Exit(2)
	}

	flow := ssta.DefaultFlow()
	flow.Cache = ssta.NewExtractCacheSized(*cacheEntries, *cacheCost)
	srv := server.New(server.Config{
		Flow:               flow,
		MaxConcurrent:      *concurrency,
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		JobWorkers:         *jobWorkers,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxItems:           *maxItems,
		GraphCacheEntries:  *graphEntries,
		MaxSessions:        *maxSessions,
		SessionTTL:         *sessionTTL,
		DefaultScenarios:   defaultScens,
		BatchWindow:        *batchWindow,
		BatchMax:           *batchMax,
		Store:              backend,
		StoreFlushInterval: *storeFlush,
		Cluster:            pool,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *role == "worker" {
		ln, err := net.Listen("tcp", *rpcListen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sstad: -rpc-listen: %v\n", err)
			os.Exit(2)
		}
		go func() {
			if err := cluster.Serve(ctx, ln, srv.WorkerService()); err != nil && ctx.Err() == nil {
				log.Printf("sstad: cluster rpc: %v", err)
			}
		}()
		log.Printf("sstad worker serving cluster rpc on %s", ln.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("sstad listening on %s (role %s, concurrency %d, queue %d, cache %d entries)",
		*addr, *role, *concurrency, *queueDepth, *cacheEntries)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "sstad: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("sstad shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("sstad: shutdown: %v", err)
		}
		srv.Close()
	}
}
