// Command fig6 regenerates Fig. 6 of the paper: the histogram of edge
// maximum criticalities (c_m) for the c7552 benchmark. The paper's
// observation — criticalities concentrate near 0 and 1, so most edges can
// be removed at a small threshold — is what makes gray-box model extraction
// effective.
//
// Usage:
//
//	go run ./cmd/fig6 [-circuit c7552] [-seed 1] [-bins 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/ssta"
)

func main() {
	name := flag.String("circuit", "c7552", "benchmark circuit")
	seed := flag.Int64("seed", 1, "generator seed")
	bins := flag.Int("bins", 20, "histogram bins over [0,1]")
	workers := flag.Int("workers", 0, "worker goroutines (0: all cores)")
	flag.Parse()

	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph(*name, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	crit, err := ssta.EdgeCriticalities(g, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h, err := core.CriticalityHistogram(crit.Cm, *bins)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Fig. 6: edge criticalities (c_m) in %s — %d edges\n\n", *name, len(crit.Cm))
	fmt.Printf("%-14s %9s %7s\n", "bin", "count", "frac")
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for b := range h.Counts {
		lo, hi := h.BinBounds(b)
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", h.Counts[b]*50/maxCount)
		}
		fmt.Printf("[%.2f, %.2f) %9d %6.1f%% %s\n", lo, hi, h.Counts[b], 100*h.Fraction(b), bar)
	}
	below := 0
	for _, c := range crit.Cm {
		if c < core.DefaultDelta {
			below++
		}
	}
	fmt.Printf("\nedges with c_m < %.2f (removable at the paper's threshold): %d of %d (%.0f%%)\n",
		core.DefaultDelta, below, len(crit.Cm), 100*float64(below)/float64(len(crit.Cm)))
}
