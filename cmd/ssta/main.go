// Command ssta runs flat statistical static timing analysis on a
// combinational circuit and reports the delay distribution.
//
// Input selection (one of):
//
//	-bench file.bench   parse an ISCAS85 .bench netlist
//	-gen c1908          generate a topology-matched ISCAS85-like benchmark
//	-c17                use the embedded c17
//	-mult 16            use a structural n x n array multiplier
//
// Usage:
//
//	go run ./cmd/ssta -gen c880 [-seed 1] [-mc 0] [-outputs]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/ssta"
)

func main() {
	benchFile := flag.String("bench", "", "path to a .bench netlist")
	gen := flag.String("gen", "", "ISCAS85 benchmark name to generate")
	useC17 := flag.Bool("c17", false, "use the embedded c17")
	mult := flag.Int("mult", 0, "width of a structural array multiplier")
	seed := flag.Int64("seed", 1, "generator seed")
	mcIters := flag.Int("mc", 0, "also run Monte Carlo with this many iterations")
	perOutput := flag.Bool("outputs", false, "print per-output arrival statistics")
	flag.Parse()

	flow := ssta.DefaultFlow()
	var (
		g    *ssta.Graph
		name string
		err  error
	)
	switch {
	case *benchFile != "":
		f, ferr := os.Open(*benchFile)
		fatal(ferr)
		defer f.Close()
		name = *benchFile
		g, _, err = flow.LoadBench(name, f)
	case *gen != "":
		name = *gen
		g, _, err = flow.BenchGraph(name, *seed)
	case *mult > 0:
		c, merr := ssta.ArrayMultiplier(*mult)
		fatal(merr)
		name = c.Name
		g, _, err = flow.Graph(c)
	case *useC17:
		name = "c17"
		g, _, err = flow.Graph(ssta.C17())
	default:
		fmt.Fprintln(os.Stderr, "select an input: -bench, -gen, -mult or -c17")
		os.Exit(2)
	}
	fatal(err)

	delay, err := g.MaxDelay()
	fatal(err)
	fmt.Printf("circuit %s: %d vertices, %d edges, %d inputs, %d outputs\n",
		name, g.NumVerts, len(g.Edges), len(g.Inputs), len(g.Outputs))
	fmt.Printf("\nstatistical circuit delay: mean %.2f ps, std %.2f ps\n", delay.Mean(), delay.Std())
	for _, p := range []float64{0.01, 0.5, 0.95, 0.99, 0.9987} {
		fmt.Printf("  %6.2f%% yield at %8.2f ps\n", 100*p, delay.Quantile(p))
	}

	if *perOutput {
		arr, err := g.ArrivalAll()
		fatal(err)
		fmt.Printf("\n%-16s %10s %9s\n", "output", "mean(ps)", "std(ps)")
		for k, o := range g.Outputs {
			if arr[o] == nil {
				fmt.Printf("%-16s %10s %9s\n", g.OutputNames[k], "unreach", "-")
				continue
			}
			fmt.Printf("%-16s %10.2f %9.2f\n", g.OutputNames[k], arr[o].Mean(), arr[o].Std())
		}
	}

	if *mcIters > 0 {
		samples, err := ssta.MaxDelaySamples(g, ssta.MCConfig{Samples: *mcIters, Seed: *seed})
		fatal(err)
		s := stats.Summarize(samples)
		fmt.Printf("\nMonte Carlo (%d iters): mean %.2f ps, std %.2f ps (SSTA error: mean %+.2f%%, std %+.2f%%)\n",
			*mcIters, s.Mean, s.Std,
			100*(delay.Mean()-s.Mean)/s.Mean, 100*(delay.Std()-s.Std)/s.Std)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
