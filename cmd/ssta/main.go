// Command ssta runs flat statistical static timing analysis on one or more
// circuits and reports the delay distributions. Multiple circuits fan out
// across a bounded worker pool through ssta.AnalyzeBatch. Sequential
// circuits — .bench netlists with DFF lines, or any input wrapped with
// -clocked — additionally report worst setup and hold slack under the
// default clock.
//
// Input selection (one of):
//
//	-bench file.bench   parse an ISCAS85 .bench netlist (DFF lines accepted)
//	-gen c1908          generate topology-matched ISCAS85-like benchmarks
//	                    (comma-separated list for a batch sweep)
//	-c17                use the embedded c17
//	-mult 16            use a structural n x n array multiplier
//
// Usage:
//
//	go run ./cmd/ssta -gen c880 [-seed 1] [-mc 0] [-outputs]
//	go run ./cmd/ssta -gen c432,c880,c1908 -workers 4
//	go run ./cmd/ssta -gen c880 -clocked
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/stats"
	"repro/ssta"
)

func main() {
	benchFile := flag.String("bench", "", "path to a .bench netlist")
	gen := flag.String("gen", "", "ISCAS85 benchmark name(s) to generate, comma-separated")
	useC17 := flag.Bool("c17", false, "use the embedded c17")
	mult := flag.Int("mult", 0, "width of a structural array multiplier")
	seed := flag.Int64("seed", 1, "generator seed")
	mcIters := flag.Int("mc", 0, "also run Monte Carlo with this many iterations")
	clocked := flag.Bool("clocked", false, "register the circuit boundary (launch/capture DFFs) and report setup/hold slack")
	perOutput := flag.Bool("outputs", false, "print per-output arrival statistics")
	workers := flag.Int("workers", 0, "concurrent analyses in a batch (0: all cores)")
	scenarios := flag.String("scenarios", "", "MCMM sweep: JSON scenario array (inline or @file) evaluated against the circuit with shared prep")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	// Profiles are flushed through stopProfiles so they survive both the
	// normal return and the fatal()/exit error paths (os.Exit skips defers).
	startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	flow := ssta.DefaultFlow()
	var items []ssta.BatchItem
	switch {
	case *benchFile != "":
		f, ferr := os.Open(*benchFile)
		fatal(ferr)
		defer f.Close()
		c, cerr := ssta.ParseBench(*benchFile, f)
		fatal(cerr)
		if *clocked {
			c, cerr = ssta.Clocked(c)
			fatal(cerr)
		}
		items = append(items, ssta.BatchItem{Name: *benchFile, Circuit: c})
	case *gen != "":
		for _, name := range ssta.ParseNameList(*gen) {
			if *clocked {
				spec, ok := ssta.SpecByName(name)
				if !ok {
					fatal(fmt.Errorf("unknown benchmark %q", name))
				}
				c, cerr := ssta.GenerateClocked(spec, *seed)
				fatal(cerr)
				items = append(items, ssta.BatchItem{Name: name, Circuit: c})
				continue
			}
			items = append(items, ssta.BatchItem{Bench: name, Seed: *seed})
		}
	case *mult > 0:
		c, merr := ssta.ArrayMultiplier(*mult)
		fatal(merr)
		if *clocked {
			c, merr = ssta.Clocked(c)
			fatal(merr)
		}
		items = append(items, ssta.BatchItem{Circuit: c})
	case *useC17:
		c := ssta.C17()
		if *clocked {
			var cerr error
			c, cerr = ssta.Clocked(c)
			fatal(cerr)
		}
		items = append(items, ssta.BatchItem{Name: "c17", Circuit: c})
	default:
		fmt.Fprintln(os.Stderr, "select an input: -bench, -gen, -mult or -c17")
		exit(2)
	}
	if len(items) == 0 {
		fmt.Fprintln(os.Stderr, "no circuits named; select an input: -bench, -gen, -mult or -c17")
		exit(2)
	}

	results := flow.AnalyzeBatch(items, ssta.BatchOptions{Workers: *workers})

	if len(results) > 1 {
		if *mcIters > 0 || *perOutput || *scenarios != "" {
			fmt.Fprintln(os.Stderr, "note: -mc, -outputs and -scenarios apply to single-circuit runs only; ignored for the batch sweep")
		}
		// Batch sweep: one summary line per circuit. Sequential batches get
		// two extra columns with the worst setup/hold slack means.
		anySeq := false
		for _, r := range results {
			if r.Seq != nil {
				anySeq = true
				break
			}
		}
		fmt.Printf("%-10s %8s %8s %10s %9s %12s", "circuit", "verts", "edges", "mean(ps)", "std(ps)", "99.87%(ps)")
		if anySeq {
			fmt.Printf(" %10s %10s", "setup(ps)", "hold(ps)")
		}
		fmt.Printf(" %9s\n", "t(ms)")
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, r.Err)
				exit(1)
			}
			fmt.Printf("%-10s %8d %8d %10.2f %9.2f %12.2f",
				r.Name, r.Graph.NumVerts, len(r.Graph.Edges),
				r.Delay.Mean(), r.Delay.Std(), r.Delay.Quantile(0.99865))
			if anySeq {
				if r.Seq != nil {
					fmt.Printf(" %10.2f %10.2f", r.Seq.WorstSetup.Mean(), r.Seq.WorstHold.Mean())
				} else {
					fmt.Printf(" %10s %10s", "-", "-")
				}
			}
			fmt.Printf(" %9.1f\n", float64(r.Elapsed.Microseconds())/1000)
		}
		return
	}

	r := results[0]
	fatal(r.Err)
	g, delay := r.Graph, r.Delay
	fmt.Printf("circuit %s: %d vertices, %d edges, %d inputs, %d outputs\n",
		r.Name, g.NumVerts, len(g.Edges), len(g.Inputs), len(g.Outputs))
	fmt.Printf("\nstatistical circuit delay: mean %.2f ps, std %.2f ps\n", delay.Mean(), delay.Std())
	for _, p := range []float64{0.01, 0.5, 0.95, 0.99, 0.9987} {
		fmt.Printf("  %6.2f%% yield at %8.2f ps\n", 100*p, delay.Quantile(p))
	}

	if r.Seq != nil {
		seq := r.Seq
		fmt.Printf("\nsequential: %d registers, clock %.0f ps (skew %.0f ps, jitter %.0f ps)\n",
			len(seq.Regs), seq.Clock.PeriodPS, seq.Clock.SkewPS, seq.Clock.JitterPS)
		fmt.Printf("  worst setup slack: mean %8.2f ps, std %6.2f ps, 0.13%% tail %8.2f ps\n",
			seq.WorstSetup.Mean(), seq.WorstSetup.Std(), seq.WorstSetup.Quantile(0.00135))
		fmt.Printf("  worst hold slack:  mean %8.2f ps, std %6.2f ps, 0.13%% tail %8.2f ps\n",
			seq.WorstHold.Mean(), seq.WorstHold.Std(), seq.WorstHold.Quantile(0.00135))
	}

	if *scenarios != "" {
		runSweep(g, *scenarios, *workers)
	}

	if *perOutput {
		arr, err := g.ArrivalAll()
		fatal(err)
		fmt.Printf("\n%-16s %10s %9s\n", "output", "mean(ps)", "std(ps)")
		for k, o := range g.Outputs {
			if arr[o] == nil {
				fmt.Printf("%-16s %10s %9s\n", g.OutputNames[k], "unreach", "-")
				continue
			}
			fmt.Printf("%-16s %10.2f %9.2f\n", g.OutputNames[k], arr[o].Mean(), arr[o].Std())
		}
	}

	if *mcIters > 0 {
		samples, err := ssta.MaxDelaySamples(g, ssta.MCConfig{Samples: *mcIters, Seed: *seed, Workers: *workers})
		fatal(err)
		s := stats.Summarize(samples)
		fmt.Printf("\nMonte Carlo (%d iters): mean %.2f ps, std %.2f ps (SSTA error: mean %+.2f%%, std %+.2f%%)\n",
			*mcIters, s.Mean, s.Std,
			100*(delay.Mean()-s.Mean)/s.Mean, 100*(delay.Std()-s.Std)/s.Std)
	}
}

// runSweep evaluates a -scenarios JSON set against the circuit with shared
// prep and prints the per-scenario table, envelope and divergence ranking.
func runSweep(g *ssta.Graph, flagValue string, workers int) {
	scens, err := ssta.ParseScenariosFlag(flagValue)
	fatal(err)
	rep, err := ssta.SweepAnalyzeGraph(context.Background(), g, scens, ssta.SweepOptions{Workers: workers})
	fatal(err)
	fmt.Printf("\nMCMM sweep: %d scenarios (%d completed) in %.1f ms\n",
		len(rep.Results), rep.Completed, float64(rep.Elapsed.Microseconds())/1000)
	// Sequential subjects carry per-scenario worst setup/hold slack means
	// under each scenario's clock; combinational sweeps omit the columns.
	anySeq := false
	for _, r := range rep.Results {
		if r.SetupSlack != nil {
			anySeq = true
			break
		}
	}
	fmt.Printf("%-16s %10s %9s %12s", "scenario", "mean(ps)", "std(ps)", "99.87%(ps)")
	if anySeq {
		fmt.Printf(" %10s %10s", "setup(ps)", "hold(ps)")
	}
	fmt.Printf(" %9s\n", "t(ms)")
	for _, r := range rep.Results {
		if r.Err != nil {
			fmt.Printf("%-16s %s\n", r.Name, r.Err)
			continue
		}
		fmt.Printf("%-16s %10.2f %9.2f %12.2f", r.Name, r.Mean, r.Std, r.Quantile)
		if anySeq {
			if r.SetupSlack != nil && r.HoldSlack != nil {
				fmt.Printf(" %10.2f %10.2f", r.SetupSlack.Mean, r.HoldSlack.Mean)
			} else {
				fmt.Printf(" %10s %10s", "-", "-")
			}
		}
		fmt.Printf(" %9.1f\n", float64(r.Elapsed.Microseconds())/1000)
	}
	fmt.Printf("%-16s %10.2f %9.2f %12.2f   (worst: %s)\n",
		"envelope", rep.Envelope.Mean, rep.Envelope.Std, rep.Envelope.Quantile, rep.Envelope.Worst)
	if len(rep.TopDivergent) > 0 {
		// The ranking baseline is the first *completed* scenario (the
		// report skips failed ones), so label it accordingly.
		base := ""
		for _, r := range rep.Results {
			if r.Err == nil {
				base = r.Name
				break
			}
		}
		fmt.Printf("top divergent vs %s:", base)
		for _, dv := range rep.TopDivergent {
			fmt.Printf(" %s (%.2f ps)", dv.Name, dv.Score)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
}

// exit flushes any active profiles before terminating, so -cpuprofile and
// -memprofile produce usable output even when a run fails.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

var profileStop []func()

func startProfiles(cpuPath, memPath string) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		profileStop = append(profileStop, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if memPath != "" {
		profileStop = append(profileStop, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the heap profile is meaningful
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		})
	}
}

func stopProfiles() {
	stops := profileStop
	profileStop = nil // idempotent: defer + exit both call this
	for _, stop := range stops {
		stop()
	}
}
