// Quickstart: run statistical static timing analysis on the embedded c17
// benchmark and print the circuit delay distribution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/ssta"
)

func main() {
	// The default flow bundles the paper's setup: a synthetic 90nm cell
	// library, process parameters Leff/Tox/Vth with sigmas 15.7%/5.3%/4.4%,
	// 15% load variation, and grid-based spatial correlation (0.92 between
	// neighboring grids decaying to the 0.42 global floor).
	flow := ssta.DefaultFlow()

	// c17: five inputs, two outputs, six NAND gates.
	ckt := ssta.C17()
	g, _, err := flow.Graph(ckt)
	if err != nil {
		log.Fatal(err)
	}

	// The statistical circuit delay is a canonical first-order form:
	// arrival times are propagated with statistical sum and Clark max.
	delay, err := g.MaxDelay()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("c17 delay: mean %.2f ps, sigma %.2f ps\n", delay.Mean(), delay.Std())
	fmt.Printf("  99%% yield point: %.2f ps\n", delay.Quantile(0.99))
	fmt.Printf("  3-sigma corner:  %.2f ps\n", delay.Mean()+3*delay.Std())

	// Per-output arrival times.
	arr, err := g.ArrivalAll()
	if err != nil {
		log.Fatal(err)
	}
	for k, o := range g.Outputs {
		fmt.Printf("  output %-4s mean %.2f ps, sigma %.2f ps\n",
			g.OutputNames[k], arr[o].Mean(), arr[o].Std())
	}

	// Cross-check against Monte Carlo on the same variation model.
	samples, err := ssta.MaxDelaySamples(g, ssta.MCConfig{Samples: 20000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	fmt.Printf("Monte Carlo mean (20k iters): %.2f ps (SSTA error %+.2f%%)\n",
		mean, 100*(delay.Mean()-mean)/mean)
}
