// Hierarchical analysis of a multiplier array: builds an 8x8 structural
// array multiplier (the domain object behind c6288), extracts its timing
// model, places four instances 2x2 in abutment with cross-connected
// columns, and compares the proposed hierarchical analysis against the
// global-correlation-only baseline and Monte Carlo ground truth.
//
//	go run ./examples/hierarchical
package main

import (
	"fmt"
	"log"

	"repro/internal/stats"
	"repro/ssta"
)

func main() {
	flow := ssta.DefaultFlow()

	// The module: a real 8x8 array multiplier netlist (AND partial products
	// + carry-save adder rows), not a synthetic topology.
	mult, err := ssta.ArrayMultiplier(8)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := mult.Stat()
	fmt.Printf("module: %s — %d gates, depth %d, %d inputs, %d outputs\n",
		st.Name, st.Gates, st.Depth, st.PIs, st.POs)

	g, plan, err := flow.Graph(mult)
	if err != nil {
		log.Fatal(err)
	}
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:  %d -> %d edges (%.0f%%), %d -> %d vertices (%.0f%%)\n",
		model.Stats.EdgesOrig, model.Stats.EdgesModel, 100*model.Stats.PE(),
		model.Stats.VertsOrig, model.Stats.VertsModel, 100*model.Stats.PV())

	mod, err := ssta.NewModule("mult8", model, plan)
	if err != nil {
		log.Fatal(err)
	}
	mod.Orig = g

	design, err := flow.QuadDesign("quad-mult8", mod)
	if err != nil {
		log.Fatal(err)
	}

	full, err := design.Analyze(ssta.FullCorrelation)
	if err != nil {
		log.Fatal(err)
	}
	glob, err := design.Analyze(ssta.GlobalOnly)
	if err != nil {
		log.Fatal(err)
	}
	flat, _, err := design.Flatten()
	if err != nil {
		log.Fatal(err)
	}
	samples, err := ssta.MaxDelaySamples(flat, ssta.MCConfig{Samples: 10000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sum := stats.Summarize(samples)
	ecdf, err := stats.NewECDF(samples)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndesign delay (4 modules, cross-connected columns):\n")
	fmt.Printf("  %-34s mean %8.1f ps  std %7.2f ps\n", "Monte Carlo (flattened, 10k):", sum.Mean, sum.Std)
	fmt.Printf("  %-34s mean %8.1f ps  std %7.2f ps  KS %.4f\n",
		"proposed hierarchical:", full.Delay.Mean(), full.Delay.Std(), ecdf.KSAgainst(full.Delay.CDF))
	fmt.Printf("  %-34s mean %8.1f ps  std %7.2f ps  KS %.4f\n",
		"global-only baseline:", glob.Delay.Mean(), glob.Delay.Std(), ecdf.KSAgainst(glob.Delay.CDF))
	fmt.Printf("\nthe baseline ignores spatially correlated local variation between\n")
	fmt.Printf("modules and visibly misestimates the distribution; the proposed\n")
	fmt.Printf("variable replacement (paper eq. 19) recovers it.\n")
}
