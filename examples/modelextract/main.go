// Model extraction with a criticality-threshold sweep: the ablation behind
// the paper's choice of delta = 0.05. For each threshold the example
// extracts a gray-box timing model from a c1908-scale module and reports
// model size against the worst-case accuracy loss of the input-output delay
// matrix.
//
//	go run ./examples/modelextract
package main

import (
	"fmt"
	"log"
	"math"

	"repro/ssta"
)

func main() {
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c1908", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the analytic all-pairs delay matrix of the original module.
	ref, err := g.AllPairsDelays(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("delta sweep on c1908-like module (913 vertices, 1498 edges)")
	fmt.Printf("%-8s %6s %6s %5s %5s %9s %9s\n", "delta", "Em", "Vm", "pe", "pv", "merr", "verr")
	for _, delta := range []float64{-1, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30} {
		model, err := flow.Extract(g, ssta.ExtractOptions{Delta: delta})
		if err != nil {
			log.Fatal(err)
		}
		ap, err := model.Graph.AllPairsDelays(0)
		if err != nil {
			log.Fatal(err)
		}
		var merr, verr float64
		for i := range ref.M {
			for j := range ref.M[i] {
				a, b := ref.M[i][j], ap.M[i][j]
				if a == nil || b == nil {
					continue
				}
				merr = math.Max(merr, math.Abs(b.Mean()-a.Mean())/a.Mean())
				if a.Std() > 0 {
					verr = math.Max(verr, math.Abs(b.Std()-a.Std())/a.Std())
				}
			}
		}
		label := fmt.Sprintf("%.2f", delta)
		if delta < 0 {
			label = "merge"
		}
		st := model.Stats
		fmt.Printf("%-8s %6d %6d %4.0f%% %4.0f%% %8.2f%% %8.2f%%\n",
			label, st.EdgesModel, st.VertsModel, 100*st.PE(), 100*st.PV(), 100*merr, 100*verr)
	}
	fmt.Println("\n(merge = serial/parallel merges only, no criticality removal;")
	fmt.Println(" errors are worst-case over all input-output pairs vs the original module)")
}
