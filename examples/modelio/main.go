// The IP exchange flow of the paper's Section III: a vendor extracts a
// gray-box statistical timing model and ships it as JSON instead of the
// netlist; the integrator loads the models — never seeing the netlists —
// and runs hierarchical design-level analysis with variable replacement.
//
//	go run ./examples/modelio
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/ssta"
)

func main() {
	flow := ssta.DefaultFlow()

	// ---- Vendor side: characterize the IP and serialize the model.
	ip, err := ssta.ArrayMultiplier(8)
	if err != nil {
		log.Fatal(err)
	}
	g, plan, err := flow.Graph(ip)
	if err != nil {
		log.Fatal(err)
	}
	model, err := flow.Extract(g, ssta.ExtractOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	if err := model.WriteJSON(&wire); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vendor: extracted %d-edge model from %d-edge netlist, shipped %d bytes of JSON\n",
		model.Stats.EdgesModel, model.Stats.EdgesOrig, wire.Len())

	// ---- Integrator side: load the model and build the design. Only the
	// JSON and the module geometry cross the boundary.
	loaded, err := ssta.ReadModelJSON(&wire)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := ssta.NewModule("vendor-ip", loaded, plan)
	if err != nil {
		log.Fatal(err)
	}
	design, err := flow.QuadDesign("soc", mod)
	if err != nil {
		log.Fatal(err)
	}
	res, err := design.Analyze(ssta.FullCorrelation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrator: 4-instance design delay mean %.1f ps, sigma %.2f ps (%v analysis)\n",
		res.Delay.Mean(), res.Delay.Std(), res.Elapsed.Round(1000))
	fmt.Printf("            99%% yield point %.1f ps\n", res.Delay.Quantile(0.99))

	// The integrator cannot flatten (no netlists) — show that explicitly.
	if _, _, err := design.Flatten(); err != nil {
		fmt.Printf("            flattening without netlists correctly fails: %v\n", err)
	}
}
