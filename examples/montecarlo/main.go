// Monte Carlo convergence study: how many iterations does the reference
// simulation need before its moments stabilize around the analytic SSTA
// result? Context for the paper's choice of 10,000 iterations.
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"

	"repro/internal/stats"
	"repro/ssta"
)

func main() {
	flow := ssta.DefaultFlow()
	g, _, err := flow.BenchGraph("c432", 1)
	if err != nil {
		log.Fatal(err)
	}
	delay, err := g.MaxDelay()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("c432-like: analytic SSTA delay mean %.2f ps, std %.2f ps\n\n", delay.Mean(), delay.Std())

	// One long deterministic run; prefixes of it emulate shorter runs.
	const maxSamples = 40000
	samples, err := ssta.MaxDelaySamples(g, ssta.MCConfig{Samples: maxSamples, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %9s %12s %12s\n", "iters", "mean(ps)", "std(ps)", "mean err", "std err")
	for _, n := range []int{100, 300, 1000, 3000, 10000, 30000, maxSamples} {
		s := stats.Summarize(samples[:n])
		fmt.Printf("%-10d %10.2f %9.2f %11.2f%% %11.2f%%\n",
			n, s.Mean, s.Std,
			100*(s.Mean-delay.Mean())/delay.Mean(),
			100*(s.Std-delay.Std())/delay.Std())
	}
	fmt.Println("\nnote: the residual std gap at high iteration counts is the Clark")
	fmt.Println("max approximation of the analytic engine, not Monte Carlo noise.")
}
