// Corner pessimism: the paper's motivation. Corner-based STA pushes every
// variation source of every gate to its worst case simultaneously; SSTA
// propagates distributions and reads the same yield point off the CDF. The
// gap between the two is the design margin SSTA recovers.
//
//	go run ./examples/corners
package main

import (
	"fmt"
	"log"

	"repro/ssta"
)

func main() {
	flow := ssta.DefaultFlow()
	fmt.Println("corner-based STA vs statistical 3-sigma yield point")
	fmt.Printf("%-8s %12s %14s %14s %10s\n",
		"circuit", "nominal(ps)", "3s-corner(ps)", "SSTA-99.87%", "margin")
	// The multi-circuit sweep goes through the batch scheduler: all five
	// benchmarks are generated and analyzed concurrently.
	var items []ssta.BatchItem
	for _, name := range []string{"c432", "c880", "c1908", "c3540", "c6288"} {
		items = append(items, ssta.BatchItem{Bench: name, Seed: 1})
	}
	for _, r := range flow.AnalyzeBatch(items, ssta.BatchOptions{}) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		nominal, err := r.Graph.NominalDelay()
		if err != nil {
			log.Fatal(err)
		}
		corner, err := r.Graph.CornerDelay(3)
		if err != nil {
			log.Fatal(err)
		}
		q := r.Delay.Quantile(0.99865) // the same 3-sigma coverage, statistically
		fmt.Printf("%-8s %12.1f %14.1f %14.1f %9.1f%%\n",
			r.Name, nominal, corner, q, 100*(corner-q)/q)
	}
	fmt.Println("\nmargin = how much the all-sources corner over-constrains the design")
	fmt.Println("relative to the statistical yield point with identical coverage.")
}
