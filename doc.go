// Package repro is a from-scratch Go reproduction of Li, Chen, Schmidt,
// Schneider, Schlichtmann: "On Hierarchical Statistical Static Timing
// Analysis" (DATE 2009, DOI 10.1109/DATE.2009.5090869).
//
// The public API lives in the ssta package; the experiment harnesses that
// regenerate the paper's Table I and Figures 6-7 live under cmd/, and
// cmd/sstad serves the engine as a long-running HTTP daemon.
//
// # Package layout
//
//	ssta                the public facade: default flow, batch scheduler,
//	                    re-exported domain types
//	internal/canon      canonical first-order delay forms (Clark max,
//	                    tightness probabilities) in two representations:
//	                    pointer-based *Form at API boundaries, and the flat
//	                    Bank/View arena (contiguous SoA storage + fused
//	                    allocation-free kernels) the hot path runs on
//	internal/timing     statistical timing graphs, pooled-arena propagation
//	                    passes (Pass, latest- and earliest-arrival),
//	                    sequential setup/hold slack, all-pairs delays, the
//	                    shared bounded worker pool (ParallelFor)
//	internal/core       timing-model extraction (criticality filter +
//	                    merges) and the LRU-bounded extraction cache
//	internal/hier       hierarchical design-level analysis: heterogeneous
//	                    grid partition, eq. 19 variable replacement, the
//	                    cached+parallel stitching engine
//	internal/scenario   the MCMM sweep engine: named scenario transforms
//	                    (derates, per-edge-class scales, sigma multipliers,
//	                    clock period/skew/jitter, module swaps) evaluated
//	                    against one shared prep
//	internal/server     the sstad serving layer: HTTP/JSON batch analysis,
//	                    MCMM sweeps, async jobs, admission control,
//	                    health + metrics
//	internal/variation  process parameters, grid correlation, PCA
//	internal/circuit    netlists: DFF-aware .bench reader, ISCAS85-like
//	                    generator (combinational + clocked), multipliers, c17
//	internal/cell       synthetic 90nm cell library
//	internal/place      topological placement and grid binning
//	internal/mc         Monte Carlo ground truth
//	internal/mat,stats  small dense-matrix and statistics kernels
//
// # Concurrency and caching
//
// The analysis engine is concurrent and cache-aware end to end:
//
//   - timing.ParallelFor is the one bounded worker pool used by all-pairs
//     delay passes, the criticality engine, the hierarchical stitcher and
//     the batch scheduler. Workers == 1 always degenerates to a strictly
//     serial loop, so every parallel path has a bit-identical serial twin.
//     ParallelForCtx adds cooperative cancellation, and worker panics are
//     captured and re-panicked on the calling goroutine instead of killing
//     the process.
//   - core.ExtractCache memoizes timing-model extraction per (module
//     graph, options) with singleflight coalescing and an LRU bound
//     (configurable entry cap + byte-cost budget); ssta.DefaultFlow
//     installs one shared cache on the flow.
//   - hier.Design caches its per-mode analysis prep (die partition, PCA,
//     per-instance replacement matrices) behind a geometry fingerprint, so
//     repeated analyses of one design — across modes, corners or batch
//     items — pay the eigendecomposition once.
//   - ssta.AnalyzeBatch fans flat and hierarchical analyses out across a
//     bounded pool with those caches shared, which is the one scheduling
//     path used by cmd/ssta, cmd/report, cmd/table1, examples/corners and
//     the sstad serving layer. AnalyzeBatchCtx threads a context through
//     the whole stack — batch items, hierarchical stitching, and the
//     per-vertex propagation loops — so cancellation and deadlines are
//     honored mid-analysis.
//
// Parallel and cached runs produce results identical (within 1e-9, in
// practice bitwise) to the serial engine; see internal/hier's equivalence
// tests.
//
// # Serving (sstad)
//
// cmd/sstad wraps the batch engine in a daemon (internal/server): POST
// /v1/analyze runs a batch synchronously under a per-request deadline,
// POST /v1/jobs queues it on a bounded async job queue (poll/cancel via
// GET/DELETE /v1/jobs/{id}), and /healthz and /metrics expose liveness,
// cache hit rates, queue depth and per-item latency. Admission is bounded
// by an analysis-slot semaphore and the fixed-depth job queue; request
// cancellation propagates down to individual graph vertices. See the
// internal/server package docs for the wire schema.
//
// # The arena hot path
//
// The propagation kernels run on flat storage: canon.Bank is a contiguous
// structure-of-arrays arena of canonical forms (stride dim+2), canon.View
// one form inside it, and the fused view kernels (AddViews, MaxViews,
// VarCovViews, TightnessProbViews) match the pointer-based kernels at
// 1e-12. timing.Pass wraps a pooled per-graph arena so forward/backward
// passes — including the one-pass-per-input all-pairs scheme and the
// criticality engine's cutset evaluation — perform O(1) allocations per
// pass. See README.md ("Performance") and BENCH_2.json for measurements.
//
// # Incremental analysis: the edit and invalidation model
//
// The paper's ECO argument — change one module, re-extract one model,
// restitch — extends down to single edits. timing.Graph is mutable through
// an edit API (SetEdgeDelay, ScaleEdgeDelay, SetEdgeNominal, AddEdgeLive,
// RemoveEdge, RetargetIO) with a layered invalidation contract:
//
//   - The flat edge-delay bank is never allowed to go stale: delay edits
//     patch the affected slot in place, edge additions invalidate the bank
//     structurally (capacity mismatch forces a rebuild), and removed edges
//     leave unreferenced slots behind tombstones so edge indices stay
//     stable.
//   - The cached topological order survives every edit that provably keeps
//     it valid (delay edits, removals, order-respecting additions). An
//     order-violating addition — the one edit that would reorder Clark-max
//     operands at vertices far outside its cone — conservatively marks the
//     whole graph dirty instead.
//   - Every edit records dirty seed vertices. timing.Incremental owns
//     persistent arrival/required banks and absorbs the seeds in Update,
//     re-propagating only the affected fan-out/fan-in cones in an
//     operation order that reproduces a full pass bit for bit, with early
//     termination once a recomputed form matches the stored one at 1e-12.
//
// One level up, hier.Session splits the analysis prep into per-instance
// units: swapping or re-characterizing one instance recomputes only that
// instance's replacement matrix and rewritten-edge cache, recommitting the
// other instances from cache (models come through the shared
// ExtractCache). ssta.Session is the public stateful facade over both, and
// internal/server exposes it as HTTP sessions (POST /v1/sessions, POST
// /v1/sessions/{id}/edits) with idle-TTL eviction — clients pay one full
// analysis per session and incremental cost per edit batch. See README.md
// ("Incremental analysis & sessions") and BENCH_3.json.
//
// # Multi-corner/multi-scenario sweeps: the scenario model
//
// The MCMM engine (internal/scenario, surfaced as ssta.SweepAnalyze and
// POST /v1/sweep) evaluates many named operating scenarios — timing
// derates, per-edge-class scale factors, sigma multipliers on the
// Glob/Loc/Rand variation components, swapped module variants — against
// one shared preparation. The invalidation rule falls out of linearity:
// every rescale knob is linear per canonical-form component, so it shares
// everything (partition, PCA, replacement matrices, stitched topology,
// flat delay bank) and costs one in-bank rescale (canon.ScalePartsView)
// plus one propagation pass per scenario; only a module swap changes
// structure and pays a private stitch. Reports carry per-scenario
// mean/sigma/quantiles, the cross-scenario worst-case envelope
// (component-wise max over statistics — scenarios are alternative worlds,
// not jointly distributed forms) and a divergence ranking against the
// baseline scenario. Sessions keep sweeps live across edits: SetSweep
// maintains one transformed clone + incremental state per scenario, and
// every edit batch is mirrored into the clones and re-propagated through
// dirty cones only. See README.md ("Multi-scenario sweeps") and
// BENCH_4.json.
//
// # Sequential timing: min propagation and the clock-scenario model
//
// Sequential circuits (DFF lines in .bench inputs, circuit.Clocked /
// GenerateClocked wrappers, "clocked" items over HTTP) get statistical
// setup/hold analysis on top of the same machinery. Two model choices
// keep it composable:
//
//   - Min propagation is the exact dual of max. Hold analysis needs
//     earliest arrivals, so timing.Pass grows ArrivalsMin — a
//     shortest-path pass on canon.MinViews, the Clark dual of MaxViews
//     (min(A,B) = -max(-A,-B), fused into one moment-matched kernel),
//     running on the same wavefront schedule as the latest-arrival pass.
//     Parallel min passes replay the serial contribution order, so the
//     parallel==serial bit-reproducibility contract carries over
//     unchanged.
//   - Clock knobs are slack-side, not delay-side. A scenario's
//     ClockPeriodPS/ClockSkewPS/ClockJitterPS enter only the setup/hold
//     constraint forms (period and skew shift the mean; jitter adds an
//     independent random component), never the edge-delay bank — so
//     clock-only scenarios keep Scenario.Identity() and share the base
//     prep AND the base arrival banks, paying just one slack assembly
//     per register. Setup slack is (T - skew) - setup - latest(D); hold
//     slack is earliest(D) - hold - skew; worst-case slacks are
//     statistical minima via the same min-Clark dual, so slack
//     distributions stay correlated with the parameter space exactly
//     like delays.
//
// timing.SequentialSlacks is the engine entry; batch results, sweeps,
// sessions, /v1/analyze ("setup"/"hold" views) and /v1/sweep expose it,
// and mc.ValidateSequential is the Monte-Carlo oracle for both slack
// kinds. See README.md ("Sequential timing & setup/hold").
//
// # Testing strategy
//
// Verification is layered (README.md "Testing strategy" has the full
// map): golden/equivalence tests pin every optimized path to a reference
// twin (parallel==serial, cached==cold, views==forms at 1e-12,
// incremental==from-scratch, sweep==independent analyses, HTTP==direct at
// 1e-9); native fuzz targets with committed seed corpora harden the edit
// engine (timing.FuzzGraphEdits: byte-coded edit scripts asserting
// incremental==full-pass equivalence and no panics) and the netlist
// reader (circuit.FuzzNetlistParse: accepted inputs must validate and
// round-trip); and the Monte-Carlo differential oracle (mc.Validate)
// diffs analytic mean/sigma against empirical sampling — a small-sample
// smoke in tier-1, an 8000-sample tier-2 pass including a derated sweep
// scenario behind testing.Short.
package repro
