// Package repro is a from-scratch Go reproduction of Li, Chen, Schmidt,
// Schneider, Schlichtmann: "On Hierarchical Statistical Static Timing
// Analysis" (DATE 2009, DOI 10.1109/DATE.2009.5090869).
//
// The public API lives in the ssta package; the experiment harnesses that
// regenerate the paper's Table I and Figures 6-7 live under cmd/. See
// README.md for the layout and DESIGN.md for the system inventory and the
// paper-to-module mapping.
package repro
